#include "core/path_base.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"

namespace sgq {

PathOpBase::PathOpBase(Dfa dfa, LabelId out_label)
    : dfa_(std::move(dfa)), out_label_(out_label) {
  out_transitions_.resize(dfa_.NumStates());
  for (const auto& [from, label, to] : dfa_.Transitions()) {
    out_transitions_[from].emplace_back(label, to);
  }
}

PathOpBase::SpanningTree& PathOpBase::EnsureTree(VertexId x) {
  auto [it, inserted] = trees_.try_emplace(x);
  SpanningTree& tree = it->second;
  if (inserted) {
    tree.root = x;
    TreeNode root_node;
    root_node.iv = Interval::All();
    root_node.is_root = true;
    const NodeKey key{x, dfa_.start()};
    tree.nodes.emplace(key, root_node);
    inverted_[key].push_back(x);
  }
  return tree;
}

void PathOpBase::SetNode(SpanningTree& tree, const NodeKey& child,
                         TreeNode node) {
  auto [it, inserted] = tree.nodes.insert_or_assign(child, std::move(node));
  (void)it;
  if (inserted) {
    auto& roots = inverted_[child];
    if (std::find(roots.begin(), roots.end(), tree.root) == roots.end()) {
      roots.push_back(tree.root);
    }
  }
}

void PathOpBase::RemoveNode(SpanningTree& tree, const NodeKey& key) {
  tree.nodes.erase(key);
  auto it = inverted_.find(key);
  if (it != inverted_.end()) {
    auto& roots = it->second;
    auto pos = std::find(roots.begin(), roots.end(), tree.root);
    if (pos != roots.end()) {
      *pos = roots.back();
      roots.pop_back();
    }
    if (roots.empty()) inverted_.erase(it);
  }
}

std::vector<VertexId> PathOpBase::TreesContaining(const NodeKey& key) const {
  auto it = inverted_.find(key);
  if (it == inverted_.end()) return {};
  return it->second;
}

Payload PathOpBase::RecoverPath(const SpanningTree& tree,
                                const NodeKey& key) const {
  Payload path;
  NodeKey current = key;
  while (true) {
    auto it = tree.nodes.find(current);
    SGQ_CHECK(it != tree.nodes.end()) << "broken parent chain";
    const TreeNode& node = it->second;
    if (node.is_root) break;
    path.push_back(node.via);
    current = node.parent;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

void PathOpBase::EmitResult(const SpanningTree& tree, const NodeKey& key,
                            Interval iv) {
  if (iv.Empty()) return;
  Sgt out(tree.root, key.first, out_label_, iv, {});
  if (!out_coalescer_.Offer(out)) return;
  out.payload = RecoverPath(tree, key);
  EmitTuple(out);
}

void PathOpBase::RetractAndReassert(SpanningTree& tree, VertexId v,
                                    Timestamp t) {
  Sgt negative(tree.root, v, out_label_, Interval(t, kMaxTimestamp), {},
               /*del=*/true);
  out_coalescer_.Forget(negative.edge());
  EmitTuple(negative);
  // Another accepting (v, s) witness may survive; re-assert the pair so
  // downstream state reflects the remaining derivation.
  for (const auto& [key, node] : tree.nodes) {
    if (key.first == v && !node.is_root && dfa_.IsAccepting(key.second) &&
        node.iv.exp > t) {
      EmitResult(tree, key, node.iv);
    }
  }
}

std::vector<NodeKey> PathOpBase::CollectSubtree(const SpanningTree& tree,
                                                const NodeKey& key) const {
  // Walk each node's parent chain with memoization on membership.
  std::unordered_map<NodeKey, bool, PairHash> in_subtree;
  in_subtree[key] = true;
  std::vector<NodeKey> chain;
  for (const auto& [node_key, node] : tree.nodes) {
    (void)node;
    chain.clear();
    NodeKey current = node_key;
    bool member = false;
    while (true) {
      auto memo = in_subtree.find(current);
      if (memo != in_subtree.end()) {
        member = memo->second;
        break;
      }
      const auto it = tree.nodes.find(current);
      if (it == tree.nodes.end() || it->second.is_root) {
        member = false;
        break;
      }
      chain.push_back(current);
      current = it->second.parent;
    }
    for (const NodeKey& k : chain) in_subtree[k] = member;
  }
  std::vector<NodeKey> out;
  for (const auto& [k, m] : in_subtree) {
    if (m && tree.nodes.count(k) > 0) out.push_back(k);
  }
  return out;
}

void PathOpBase::RederiveSubtree(SpanningTree& tree,
                                 const std::vector<NodeKey>& subtree,
                                 Timestamp now, bool emit_negatives) {
  if (subtree.empty()) return;
  std::set<NodeKey> detached(subtree.begin(), subtree.end());

  // Remember the accepting vertices whose previously reported validity may
  // shrink: every one of them is retracted and re-asserted below.
  std::set<VertexId> affected_vertices;
  if (emit_negatives) {
    for (const NodeKey& k : subtree) {
      if (dfa_.IsAccepting(k.second)) affected_vertices.insert(k.first);
    }
  }

  // Detach: remove the subtree from the tree (Dijkstra reattaches below).
  for (const NodeKey& k : subtree) RemoveNode(tree, k);

  // Dijkstra on maximal expiry (§6.2.5): candidates ordered by descending
  // exp so the first reattachment of a node is its best alternative.
  struct Candidate {
    Interval iv;
    NodeKey child;
    NodeKey parent;
    EdgeRef via;
    bool operator<(const Candidate& o) const { return iv.exp < o.iv.exp; }
  };
  std::priority_queue<Candidate> pq;

  auto relax_from = [&](const NodeKey& parent_key, const Interval& piv) {
    for (const auto& [label, q] : out_transitions_[parent_key.second]) {
      for (const StoredEdge& e :
           window_->OutEdges(parent_key.first, label)) {
        const NodeKey child{e.trg, q};
        if (detached.count(child) == 0) continue;
        const Interval iv = piv.Intersect(e.validity);
        if (iv.Empty() || iv.exp <= now) continue;
        pq.push(Candidate{iv, child, parent_key,
                          EdgeRef(parent_key.first, e.trg, label)});
      }
    }
  };
  // Seed from every surviving tree node.
  for (const auto& [key, node] : tree.nodes) {
    if (node.iv.exp <= now && !node.is_root) continue;
    relax_from(key, node.iv);
  }

  std::set<NodeKey> reattached;
  while (!pq.empty()) {
    Candidate c = pq.top();
    pq.pop();
    if (reattached.count(c.child) > 0) continue;
    TreeNode node;
    node.iv = c.iv;
    node.parent = c.parent;
    node.via = c.via;
    SetNode(tree, c.child, node);
    reattached.insert(c.child);
    // Under expiry-driven re-derivation the old result intervals ended
    // naturally, so a fresh positive suffices. Under explicit deletions
    // the affected vertices are retracted-and-reasserted wholesale below.
    if (!emit_negatives && dfa_.IsAccepting(c.child.second)) {
      EmitResult(tree, c.child, c.iv);
    }
    relax_from(c.child, c.iv);
  }

  if (emit_negatives) {
    // An explicit deletion may shrink previously reported validity even
    // for surviving results; retract every affected (root, v) pair and
    // re-assert it from the witnesses that remain in the tree.
    for (VertexId v : affected_vertices) {
      RetractAndReassert(tree, v, now);
    }
    // Re-derived nodes for vertices that were not previously reported
    // still need their positives.
    for (const NodeKey& k : reattached) {
      if (dfa_.IsAccepting(k.second) &&
          affected_vertices.count(k.first) == 0) {
        auto it = tree.nodes.find(k);
        if (it != tree.nodes.end()) EmitResult(tree, k, it->second.iv);
      }
    }
  }
}

void PathOpBase::HandleExplicitDeletion(const Sgt& t) {
  const Timestamp td = t.validity.ts;
  // A shared partition may already have been truncated by a sibling
  // consumer of the same deletion, so DeleteAt's "affected" bit alone
  // cannot gate the tree repair: the forest can reference the edge as
  // `via` regardless of who truncated the store first.
  const bool affected = window_->DeleteAt(t.src, t.trg, t.label, td);
  // A deleted *tree* edge disconnects the subtree under its child node;
  // non-tree edges leave the forest unchanged (§6.2.5).
  for (const auto& [s, q] : dfa_.TransitionsOnLabel(t.label)) {
    const NodeKey parent_key{t.src, s};
    const NodeKey child_key{t.trg, q};
    for (VertexId root : TreesContaining(child_key)) {
      auto tree_it = trees_.find(root);
      if (tree_it == trees_.end()) continue;
      SpanningTree& tree = tree_it->second;
      auto node_it = tree.nodes.find(child_key);
      if (node_it == tree.nodes.end() || node_it->second.is_root) continue;
      const TreeNode& node = node_it->second;
      if (node.parent != parent_key || node.via != t.edge()) continue;
      // When the store had no live entry (the edge expired or was deleted
      // before), only still-live references need repair — the sibling-
      // truncated-first case. Dead references ended naturally with the
      // window; re-deriving them would emit spurious retractions.
      if (!affected && node.iv.exp <= td) continue;
      RederiveSubtree(tree, CollectSubtree(tree, child_key), td,
                      /*emit_negatives=*/true);
    }
  }
}

void PathOpBase::Purge(Timestamp now) {
  window_->PurgeExpired(now);
  for (auto tree_it = trees_.begin(); tree_it != trees_.end();) {
    SpanningTree& tree = tree_it->second;
    std::vector<NodeKey> dead;
    for (const auto& [key, node] : tree.nodes) {
      if (!node.is_root && node.iv.exp <= now) dead.push_back(key);
    }
    for (const NodeKey& key : dead) RemoveNode(tree, key);
    if (tree.nodes.size() <= 1) {
      // Only the root remains: drop the whole tree (it is recreated on
      // demand by EnsureTree).
      RemoveNode(tree, NodeKey{tree.root, dfa_.start()});
      tree_it = trees_.erase(tree_it);
    } else {
      ++tree_it;
    }
  }
  out_coalescer_.PurgeBefore(now);
}

std::size_t PathOpBase::StateSize() const {
  std::size_t n = window_->NumEntries() + out_coalescer_.NumKeys();
  for (const auto& [_, tree] : trees_) n += tree.nodes.size();
  return n;
}

}  // namespace sgq

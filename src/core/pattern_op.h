// Physical PATTERN operator (§6.2.2): a left-deep pipeline of symmetric
// (pipelined) hash joins over variable bindings.
//
// The subgraph pattern is a conjunctive query; input port i contributes the
// atom (src_var_i, trg_var_i). Level j of the pipeline joins the
// accumulated bindings over ports 0..j with port j+1 on their shared
// variables. Every hash-table entry carries its validity interval; joins
// intersect intervals (Def. 19), which makes window expiration automatic
// (the *direct approach*): an expired entry can never produce a non-empty
// intersection with a future tuple, so probes skip it and Purge() reclaims
// it. Explicit deletions use the negative-tuple approach (§6.2.5).

#ifndef SGQ_CORE_PATTERN_OP_H_
#define SGQ_CORE_PATTERN_OP_H_

#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/logical_plan.h"
#include "core/physical.h"
#include "model/coalesce.h"

namespace sgq {

/// \brief Streaming subgraph-pattern operator (Def. 19).
class PatternOp : public PhysicalOp {
 public:
  /// \brief Builds the join pipeline from a logical PATTERN node. The join
  /// tree follows the order of the pattern's atoms (§6.2.2: "we use the
  /// ordering of predicates in PATTERN to construct the join tree").
  explicit PatternOp(const LogicalOp& pattern);

  void OnTuple(int port, const Sgt& tuple) override;
  void Purge(Timestamp now) override;
  std::string Name() const override { return "PATTERN"; }
  std::size_t StateSize() const override;

 private:
  /// A (partial) variable binding: one value per pattern variable, with
  /// kInvalidVertex marking unbound positions.
  struct Binding {
    std::vector<VertexId> vals;
    Interval iv;
  };

  using Key = std::vector<uint64_t>;
  using Table = std::unordered_map<Key, std::vector<Binding>, VecHash>;

  /// One symmetric hash join: `left` holds bindings over ports 0..j,
  /// `right` holds bindings of port j+1, both keyed on the shared vars.
  struct Level {
    std::vector<int> key_vars;  ///< shared variable indexes (sorted)
    Table left;
    Table right;
  };

  /// Converts a port tuple into a binding; returns false if an intra-atom
  /// constraint (src_var == trg_var) rejects the tuple.
  bool BindPort(int port, const Sgt& tuple, Binding* out) const;

  Key ExtractKey(const Level& level, const Binding& b) const;

  /// Inserts `b` into `table[key]`, coalescing with a value-equivalent
  /// entry whose interval overlaps or is adjacent.
  static void InsertCoalesced(Table* table, const Key& key, Binding b);

  /// Merges two bindings (caller guarantees agreement on shared vars).
  static Binding Merge(const Binding& a, const Binding& b);

  /// Cascade/Project modes. kRetract replays the join for a deleted tuple
  /// (no inserts) and emits negative outputs; kReassert re-derives the
  /// retracted output values from the surviving state and re-emits their
  /// positives (an output value can have several derivations — deleting
  /// one must not silence the others).
  enum class Mode { kInsert, kRetract, kReassert };

  /// Drives `acc` (bindings over ports 0..level) up the pipeline:
  /// insert-and-probe at each level, project at the top.
  void Cascade(std::size_t level, const Binding& acc, Mode mode);

  /// Projects a complete binding to the output sgt and emits it.
  void Project(const Binding& b, Mode mode);

  void HandleDeletion(int port, const Binding& b);

  int num_ports_;
  std::vector<std::pair<int, int>> port_vars_;  ///< (src,trg) var idx
  int out_src_var_;
  int out_trg_var_;
  LabelId out_label_;
  std::size_t num_vars_;
  std::vector<Level> levels_;  ///< size num_ports_ - 1
  StreamingCoalescer out_coalescer_;
  /// Output values retracted by the in-flight deletion (guides kReassert).
  std::set<EdgeRef> retracted_values_;
};

}  // namespace sgq

#endif  // SGQ_CORE_PATTERN_OP_H_

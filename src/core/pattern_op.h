// Physical PATTERN operator (§6.2.2): a left-deep pipeline of symmetric
// (pipelined) hash joins over variable bindings.
//
// The subgraph pattern is a conjunctive query; input port i contributes the
// atom (src_var_i, trg_var_i). Level j of the pipeline joins the
// accumulated bindings over ports 0..j with port j+1 on their shared
// variables. Every hash-table entry carries its validity interval; joins
// intersect intervals (Def. 19), which makes window expiration automatic
// (the *direct approach*): an expired entry can never produce a non-empty
// intersection with a future tuple, so probes skip it and Purge() reclaims
// it. Explicit deletions use the negative-tuple approach (§6.2.5).
//
// Single-atom state lives in the runtime's WindowStore: each port >= 1
// whose input has a known output label keeps its edges in a
// WindowEdgeStore partition and the join probes that index (by source,
// by target via the reverse index, or by both) instead of a private hash
// table. The partitions are per-operator — deletion handling replays the
// join against pre-deletion state, so aliasing them across operators
// would make retraction order-dependent (see DESIGN.md). Ports without a
// single static label (label-preserving UNION inputs) and cross-product
// levels (no shared variables) fall back to the private table.
//
// State layout (DESIGN.md §"State layout"): join tables are flat hash
// maps keyed by small-inlined key vectors; bindings inline their variable
// values (no per-binding heap allocation at the typical arity), and the
// buckets themselves are PoolVec runs on an operator-owned SlabPool — one
// binding inline in the map slot, overflow recycled through the pool's
// size-class freelists — so bucket growth never touches the global heap.
// Expired bindings are reclaimed through a slide-aligned expiry calendar —
// Purge() touches only buckets whose expiry range passed, not the whole
// table.

#ifndef SGQ_CORE_PATTERN_OP_H_
#define SGQ_CORE_PATTERN_OP_H_

#include <string>
#include <vector>

#include "algebra/logical_plan.h"
#include "common/arena.h"
#include "common/expiry_calendar.h"
#include "common/flat_map.h"
#include "common/small_vec.h"
#include "core/physical.h"
#include "core/window_store.h"
#include "model/coalesce.h"

namespace sgq {

/// \brief Shared-runtime state configuration for one PATTERN input port.
struct PatternPortState {
  WindowEdgeStore* store = nullptr;  ///< partition for this port's edges
  LabelId label = kInvalidLabel;     ///< the port's (single) tuple label
};

/// \brief Streaming subgraph-pattern operator (Def. 19).
///
/// Sharded execution partitions the join by the *driving atom*: port-0
/// tuples hash to one shard (kEdgeValue), which then owns every
/// accumulated binding — and thus every derivation — growing from them;
/// ports >= 1 broadcast, so each shard keeps a full replica of the
/// right-side single-atom state its left bindings probe. Each derivation
/// therefore happens on exactly one shard. Deletions need the two-phase
/// cross-shard protocol (DeletionCoordination): an output value retracted
/// on one shard may survive via a derivation owned by another.
class PatternOp : public PhysicalOp, public DeletionCoordination {
 public:
  /// \brief Builds the join pipeline from a logical PATTERN node. The join
  /// tree follows the order of the pattern's atoms (§6.2.2: "we use the
  /// ordering of predicates in PATTERN to construct the join tree").
  /// `port_state[p]`, when present with a store and label, moves port p's
  /// single-atom state into that WindowStore partition (p >= 1).
  explicit PatternOp(const LogicalOp& pattern,
                     std::vector<PatternPortState> port_state = {});

  void OnTuple(int port, const Sgt& tuple) override;
  void Purge(Timestamp now) override;
  std::string Name() const override { return "PATTERN"; }
  std::size_t StateSize() const override;
  std::size_t StateBytes() const override;

  void ConfigureExpirySlide(Timestamp slide) override {
    binding_expiry_.ConfigureSlide(slide);
  }

  /// \brief Port 0 (the driving atom) hash-partitions by edge value;
  /// every other port broadcasts (replicated right-side state).
  RoutingKey InputRouting(int port) const override {
    return port == 0 ? RoutingKey::kEdgeValue : RoutingKey::kBroadcast;
  }

  /// \brief Multi-atom patterns derive one output value from several
  /// port-0 bindings, potentially on different shards; single-atom
  /// patterns are value-partitioned pass-throughs and need none.
  bool NeedsDeletionCoordination() const override { return num_ports_ > 1; }

  /// \brief For the same reason, a value-equivalent output can be emitted
  /// by several shards (each shard's out_coalescer_ is blind to its
  /// siblings); the exchange's merge-side coalescer restores
  /// single-instance emission volume. Single-atom patterns partition
  /// output by value and are already duplicate-free.
  bool CoalesceAtMerge() const override { return num_ports_ > 1; }

  /// \name DeletionCoordination (sharded two-phase deletions)
  /// @{
  std::vector<EdgeRef> RetractForDeletion(int port,
                                          const Sgt& tuple) override;
  void ReassertRetracted(const std::vector<EdgeRef>& retracted) override;
  /// @}

  /// \brief Number of ports whose state is WindowStore-backed
  /// (diagnostics).
  std::size_t num_store_backed_ports() const;

  /// \brief Checkpoint encoding (model/checkpoint.h, DESIGN.md §7): every
  /// level's private left/right tables (keys sorted, bucket contents
  /// verbatim — scrubs and purges compact buckets order-preservingly, so
  /// binding order is round-trippable), entry counters, the binding-expiry
  /// calendar in drain order, and the output coalescer. Store-backed port
  /// state lives in WindowStore partitions checkpointed by the registry;
  /// the in-flight retraction scratch sets are provably empty at batch
  /// boundaries and are not serialized.
  void SerializeState(std::string* out) const override;
  Status DeserializeState(ByteReader* in) override;

 private:
  /// A (partial) variable binding: one value per pattern variable, with
  /// kInvalidVertex marking unbound positions. Values are inline for the
  /// typical arity — no heap allocation per binding.
  struct Binding {
    SmallVec<VertexId, 6> vals;
    Interval iv;
  };

  /// Join keys hold the shared variables of a level: 1-3 values inline.
  using Key = SmallVec<uint64_t, 3>;
  /// Bucket of bindings sharing a join key: the common single-binding
  /// bucket lives inline in the map slot; growth draws on bucket_pool_
  /// (no per-bucket heap allocation — the last one on the PATTERN hot
  /// path, see ROADMAP "Arena-backed PATTERN buckets").
  using Bucket = PoolVec<Binding, 1>;
  using Table = FlatMap<Key, Bucket, SmallVecHash>;

  /// Locator of one join-table bucket for the expiry calendar.
  struct BucketRef {
    int level;
    bool left;
    Key key;
  };

  /// How a store-backed right side is probed, derived from which of the
  /// port's variables appear in the level's join key.
  enum class ProbeKind {
    kOut,          ///< key binds the source: OutEdges(src)
    kOutFiltered,  ///< key binds both endpoints: OutEdges(src), filter trg
    kIn,           ///< key binds the target: InEdges(trg)
  };

  /// One symmetric hash join: `left` holds bindings over ports 0..j;
  /// the right side holds bindings of port j+1 — in the WindowStore
  /// partition `store` when set, else in the private `right` table.
  struct Level {
    std::vector<int> key_vars;  ///< shared variable indexes (sorted)
    Table left;
    Table right;
    std::size_t left_entries = 0;   ///< bindings in left (O(1) StateSize)
    std::size_t right_entries = 0;  ///< bindings in right
    WindowEdgeStore* store = nullptr;
    LabelId store_label = kInvalidLabel;
    ProbeKind probe = ProbeKind::kOut;
  };

  /// Converts a port tuple into a binding; returns false if an intra-atom
  /// constraint (src_var == trg_var) rejects the tuple.
  bool BindPort(int port, const Sgt& tuple, Binding* out) const;

  Key ExtractKey(const Level& level, const Binding& b) const;

  /// Calls `fn(binding)` for every right-side binding of `level_idx`
  /// matching `key`, probing the WindowStore partition or the private
  /// table as configured.
  template <typename Fn>
  void ForEachRightMatch(std::size_t level_idx, const Key& key,
                         Fn&& fn) const;

  /// Inserts `b` into the level's left or right table under `key`,
  /// coalescing with a value-equivalent entry whose interval overlaps or
  /// is adjacent; maintains the entry counters and the expiry calendar.
  void InsertCoalesced(int level, bool left, const Key& key, Binding b);

  /// Merges two bindings (caller guarantees agreement on shared vars).
  static Binding Merge(const Binding& a, const Binding& b);

  /// Cascade/Project modes. kRetract replays the join for a deleted tuple
  /// (no inserts) and emits negative outputs; kReassert re-derives the
  /// retracted output values from the surviving state and re-emits their
  /// positives (an output value can have several derivations — deleting
  /// one must not silence the others).
  enum class Mode { kInsert, kRetract, kReassert };

  /// Drives `acc` (bindings over ports 0..level) up the pipeline:
  /// insert-and-probe at each level, project at the top.
  void Cascade(std::size_t level, const Binding& acc, Mode mode);

  /// Projects a complete binding to the output sgt and emits it.
  void Project(const Binding& b, Mode mode);

  /// Scrubs every binding matching `pred` from `table`, maintaining the
  /// entry counter and recycling emptied buckets through bucket_pool_.
  template <typename Pred>
  void ScrubTable(Table* table, std::size_t* entries, Pred&& pred);

  static void SerializeTable(const Table& table, std::string* out);
  Status DeserializeTable(Table* table, ByteReader* in);

  int num_ports_;
  /// Backing store of every level's bucket overflow. Declared before
  /// levels_ so it is destroyed *after* them: ~PoolVec walks its block to
  /// run the remaining Binding destructors, so the pool's arena must
  /// still be alive when the tables die.
  SlabPool bucket_pool_;
  std::vector<std::pair<int, int>> port_vars_;  ///< (src,trg) var idx
  int out_src_var_;
  int out_trg_var_;
  LabelId out_label_;
  std::size_t num_vars_;
  std::vector<Level> levels_;  ///< size num_ports_ - 1
  StreamingCoalescer out_coalescer_;
  /// Output values retracted by the in-flight deletion (guides kReassert;
  /// drained sorted so the cross-shard union stays reproducible).
  FlatSet<EdgeRef, EdgeRefHash> retracted_values_;
  /// Projections of retracted_values_ onto the output endpoints, used to
  /// prune the kReassert replay: a binding whose bound output variables
  /// cannot produce a retracted value emits nothing (Project filters on
  /// retracted_values_) and its cascade inserts are idempotent — the
  /// deleted value was scrubbed before the replay — so skipping it is
  /// observationally equivalent to replaying it.
  FlatSet<VertexId> retracted_srcs_;
  FlatSet<VertexId> retracted_trgs_;

  /// \brief True when `b` could still derive a retracted output value.
  bool MayReassert(const Binding& b) const;
  /// Expiry calendar over the private join tables (store-backed sides
  /// purge through their partition's own calendar).
  ExpiryCalendar<BucketRef> binding_expiry_;
};

}  // namespace sgq

#endif  // SGQ_CORE_PATTERN_OP_H_

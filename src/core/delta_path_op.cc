#include "core/delta_path_op.h"

#include <algorithm>

namespace sgq {

void DeltaPathOp::OnTuple(int port, const Sgt& tuple) {
  (void)port;
  if (tuple.is_deletion) {
    HandleExplicitDeletion(tuple);
    return;
  }
  if (tuple.validity.Empty()) return;
  window_->Insert(tuple.src, tuple.trg, tuple.label, tuple.validity);

  std::vector<AttachWork> work;
  for (const auto& [s, q] : dfa().TransitionsOnLabel(tuple.label)) {
    if (s == dfa().start() && OwnsRoot(tuple.src)) EnsureTree(tuple.src);
    const NodeKey parent_key{tuple.src, s};
    for (VertexId root : TreesContaining(parent_key)) {
      auto tree_it = trees_.find(root);
      if (tree_it == trees_.end()) continue;
      auto node_it = tree_it->second.nodes.find(parent_key);
      if (node_it == tree_it->second.nodes.end()) continue;
      const Interval iv = node_it->second.iv.Intersect(tuple.validity);
      if (iv.Empty()) continue;
      work.push_back(AttachWork{root, parent_key, NodeKey{tuple.trg, q},
                                tuple.edge(), iv});
    }
  }
  DrainWorklist(std::move(work));
}

void DeltaPathOp::DrainWorklist(std::vector<AttachWork> work) {
  while (!work.empty()) {
    AttachWork w = std::move(work.back());
    work.pop_back();
    if (w.child == w.parent) continue;
    auto tree_it = trees_.find(w.root);
    if (tree_it == trees_.end()) continue;
    SpanningTree& tree = tree_it->second;

    auto node_it = tree.nodes.find(w.child);
    if (node_it != tree.nodes.end()) {
      // Negative-tuple behaviour (Example 10): an existing, still valid
      // node is left untouched — even if the new derivation would expire
      // later. Stale (expired) nodes are replaced, mirroring the explicit
      // deletion that [57] would have processed by now.
      if (node_it->second.is_root ||
          node_it->second.iv.exp > w.iv.ts) {
        continue;
      }
    }
    TreeNode node;
    node.iv = w.iv;
    node.parent = w.parent;
    node.via = w.via;
    SetNode(tree, w.child, std::move(node));
    if (dfa().IsAccepting(w.child.second)) {
      EmitResult(tree, w.child, w.iv);
    }
    for (const auto& [label, q] : OutTransitions(w.child.second)) {
      for (const StoredEdge& e : window_->OutEdges(w.child.first, label)) {
        const Interval next_iv = w.iv.Intersect(e.validity);
        if (next_iv.Empty()) continue;
        work.push_back(AttachWork{w.root, w.child, NodeKey{e.trg, q},
                                  EdgeRef(w.child.first, e.trg, label),
                                  next_iv});
      }
    }
  }
}

void DeltaPathOp::OnTimeAdvance(Timestamp now) {
  // Window memory is reclaimed calendar-cheaply regardless of whether any
  // tree node expired.
  window_->PurgeExpired(now);
  if (!node_expiry_.AnyDue(now)) return;

  // Drain the node calendar, verifying each hint against the live node
  // (hints can be stale: re-derived nodes, extended intervals).
  expired_scratch_.clear();
  node_expiry_.DrainDue(now, [&](const std::pair<VertexId, NodeKey>& hint) {
    auto tree_it = trees_.find(hint.first);
    if (tree_it == trees_.end()) return;
    auto node_it = tree_it->second.nodes.find(hint.second);
    if (node_it == tree_it->second.nodes.end()) return;
    const TreeNode& node = node_it->second;
    if (node.is_root) return;
    if (node.iv.exp <= now) {
      expired_scratch_.push_back(hint);
    } else if (node_expiry_.NeedsReAdd(node.iv.exp, now)) {
      node_expiry_.Add(node.iv.exp, hint);
    }
  });
  if (expired_scratch_.empty()) return;

  // Canonical (root, key) order, duplicates removed (a node may carry
  // several due hints after interval changes).
  std::sort(expired_scratch_.begin(), expired_scratch_.end());
  expired_scratch_.erase(
      std::unique(expired_scratch_.begin(), expired_scratch_.end()),
      expired_scratch_.end());

  // DRed over the spanning forest: every expired derivation is deleted and
  // the operator re-derives alternatives from the snapshot graph. Expired
  // sets are closed under descendants (a child's interval is contained in
  // its parent's at attach time and is never widened), so detaching them
  // together is sound.
  std::vector<NodeKey> expired;
  for (std::size_t i = 0; i < expired_scratch_.size();) {
    const VertexId root = expired_scratch_[i].first;
    expired.clear();
    for (; i < expired_scratch_.size() && expired_scratch_[i].first == root;
         ++i) {
      expired.push_back(expired_scratch_[i].second);
    }
    auto tree_it = trees_.find(root);
    if (tree_it == trees_.end()) continue;
    ++rederivation_rounds_;
    RederiveSubtree(tree_it->second, expired, now, /*emit_negatives=*/false);
  }
  expired_scratch_.clear();
}

void DeltaPathOp::Purge(Timestamp now) {
  OnTimeAdvance(now);
  PathOpBase::Purge(now);
}

}  // namespace sgq

#include "core/delta_path_op.h"

namespace sgq {

void DeltaPathOp::OnTuple(int port, const Sgt& tuple) {
  (void)port;
  if (tuple.is_deletion) {
    HandleExplicitDeletion(tuple);
    return;
  }
  if (tuple.validity.Empty()) return;
  window_->Insert(tuple.src, tuple.trg, tuple.label, tuple.validity);
  expiry_heap_.push(tuple.validity.exp);

  std::vector<AttachWork> work;
  for (const auto& [s, q] : dfa().TransitionsOnLabel(tuple.label)) {
    if (s == dfa().start() && OwnsRoot(tuple.src)) EnsureTree(tuple.src);
    const NodeKey parent_key{tuple.src, s};
    for (VertexId root : TreesContaining(parent_key)) {
      auto tree_it = trees_.find(root);
      if (tree_it == trees_.end()) continue;
      auto node_it = tree_it->second.nodes.find(parent_key);
      if (node_it == tree_it->second.nodes.end()) continue;
      const Interval iv = node_it->second.iv.Intersect(tuple.validity);
      if (iv.Empty()) continue;
      work.push_back(AttachWork{root, parent_key, NodeKey{tuple.trg, q},
                                tuple.edge(), iv});
    }
  }
  DrainWorklist(std::move(work));
}

void DeltaPathOp::DrainWorklist(std::vector<AttachWork> work) {
  while (!work.empty()) {
    AttachWork w = std::move(work.back());
    work.pop_back();
    if (w.child == w.parent) continue;
    auto tree_it = trees_.find(w.root);
    if (tree_it == trees_.end()) continue;
    SpanningTree& tree = tree_it->second;

    auto node_it = tree.nodes.find(w.child);
    if (node_it != tree.nodes.end()) {
      // Negative-tuple behaviour (Example 10): an existing, still valid
      // node is left untouched — even if the new derivation would expire
      // later. Stale (expired) nodes are replaced, mirroring the explicit
      // deletion that [57] would have processed by now.
      if (node_it->second.is_root ||
          node_it->second.iv.exp > w.iv.ts) {
        continue;
      }
    }
    TreeNode node;
    node.iv = w.iv;
    node.parent = w.parent;
    node.via = w.via;
    SetNode(tree, w.child, node);
    if (dfa().IsAccepting(w.child.second)) {
      EmitResult(tree, w.child, w.iv);
    }
    for (const auto& [label, q] : OutTransitions(w.child.second)) {
      for (const StoredEdge& e : window_->OutEdges(w.child.first, label)) {
        const Interval next_iv = w.iv.Intersect(e.validity);
        if (next_iv.Empty()) continue;
        work.push_back(AttachWork{w.root, w.child, NodeKey{e.trg, q},
                                  EdgeRef(w.child.first, e.trg, label),
                                  next_iv});
      }
    }
  }
}

void DeltaPathOp::OnTimeAdvance(Timestamp now) {
  bool due = false;
  while (!expiry_heap_.empty() && expiry_heap_.top() <= now) {
    expiry_heap_.pop();
    due = true;
  }
  if (!due) return;

  // DRed over the spanning forest: every expired derivation is deleted and
  // the operator re-derives alternatives from the snapshot graph. Expired
  // sets are closed under descendants (a child's interval is contained in
  // its parent's at attach time and is never widened), so detaching them
  // together is sound.
  window_->PurgeExpired(now);
  for (auto& [root, tree] : trees_) {
    (void)root;
    std::vector<NodeKey> expired;
    for (const auto& [key, node] : tree.nodes) {
      if (!node.is_root && node.iv.exp <= now) expired.push_back(key);
    }
    if (expired.empty()) continue;
    ++rederivation_rounds_;
    RederiveSubtree(tree, expired, now, /*emit_negatives=*/false);
  }
}

void DeltaPathOp::Purge(Timestamp now) {
  OnTimeAdvance(now);
  PathOpBase::Purge(now);
}

}  // namespace sgq

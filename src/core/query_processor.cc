#include "core/query_processor.h"

#include "algebra/translate.h"

namespace sgq {

Result<std::unique_ptr<QueryProcessor>> QueryProcessor::Compile(
    const LogicalOp& plan, const Vocabulary& vocab, EngineOptions options) {
  std::unique_ptr<QueryProcessor> qp(
      new QueryProcessor(std::move(options)));
  SGQ_RETURN_NOT_OK(qp->engine_.AddPlan(plan, vocab).status());
  SGQ_RETURN_NOT_OK(qp->engine_.Finalize());
  return qp;
}

Result<std::unique_ptr<QueryProcessor>> QueryProcessor::FromQuery(
    const StreamingGraphQuery& query, const Vocabulary& vocab,
    EngineOptions options) {
  SGQ_ASSIGN_OR_RETURN(LogicalPlan plan,
                       TranslateToCanonicalPlan(query, vocab));
  return Compile(*plan, vocab, std::move(options));
}

}  // namespace sgq

#include "core/query_processor.h"

#include <algorithm>

#include "algebra/translate.h"
#include "common/logging.h"
#include "core/delta_path_op.h"
#include "core/pattern_op.h"
#include "core/spath_op.h"

namespace sgq {

Result<std::unique_ptr<QueryProcessor>> QueryProcessor::Compile(
    const LogicalOp& plan, const Vocabulary& vocab, EngineOptions options) {
  SGQ_RETURN_NOT_OK(ValidatePlan(plan, vocab));
  ExecutorOptions exec_options;
  exec_options.batch_size = options.batch_size;
  std::unique_ptr<QueryProcessor> qp(new QueryProcessor(exec_options));

  SGQ_ASSIGN_OR_RETURN(OpId root, qp->Build(plan, vocab, options));

  // PATTERN and PATH coalesce their own output (Def. 11); re-coalescing at
  // the sink would only repeat the work. UNION/FILTER/WSCAN roots can still
  // emit snapshot-redundant tuples, so the sink coalesces for them.
  const bool root_coalesces = plan.kind == LogicalOpKind::kPattern ||
                              plan.kind == LogicalOpKind::kPath;
  auto sink = std::make_unique<SinkOp>(options.coalesce_output &&
                                       !root_coalesces);
  qp->sink_ = sink.get();
  const OpId sink_id = qp->executor_.AddOp(std::move(sink));
  SGQ_RETURN_NOT_OK(qp->executor_.Connect(root, sink_id, 0));

  SGQ_RETURN_NOT_OK(qp->executor_.Finalize());
  qp->explain_ = plan.ToString(vocab) + "-- runtime topology --\n" +
                 qp->executor_.DescribeTopology();
  return qp;
}

Result<std::unique_ptr<QueryProcessor>> QueryProcessor::FromQuery(
    const StreamingGraphQuery& query, const Vocabulary& vocab,
    EngineOptions options) {
  SGQ_ASSIGN_OR_RETURN(LogicalPlan plan,
                       TranslateToCanonicalPlan(query, vocab));
  return Compile(*plan, vocab, options);
}

Result<OpId> QueryProcessor::Build(const LogicalOp& node,
                                   const Vocabulary& vocab,
                                   const EngineOptions& options) {
  // Children first: the executor's insertion order doubles as its wave
  // order, and channels must point from children to parents.
  std::vector<OpId> children;
  for (const auto& c : node.children) {
    SGQ_ASSIGN_OR_RETURN(OpId child, Build(*c, vocab, options));
    children.push_back(child);
  }

  std::unique_ptr<PhysicalOp> op;
  switch (node.kind) {
    case LogicalOpKind::kWScan: {
      // Structurally identical scans compile to one operator whose channel
      // fans out to every consumer (shared scan state, §6.1).
      const std::string sig = PlanSignature(node);
      auto it = scan_dedup_.find(sig);
      if (it != scan_dedup_.end()) return it->second;
      auto scan = std::make_unique<WScanOp>(node.input_label, node.window);
      const OpId id = executor_.AddOp(std::move(scan));
      SGQ_RETURN_NOT_OK(
          executor_.RegisterSource(node.input_label, id, node.window.slide));
      scan_dedup_.emplace(sig, id);
      return id;
    }
    case LogicalOpKind::kFilter:
      op = std::make_unique<FilterOp>(node.predicates);
      break;
    case LogicalOpKind::kUnion:
      op = std::make_unique<UnionOp>(node.output_label);
      break;
    case LogicalOpKind::kPattern: {
      // Single-atom join state lives in the runtime WindowStore. The
      // partitions are per-operator (keyed by the operator's position):
      // deletion retraction replays the join against pre-deletion state,
      // which cross-operator aliasing would make order-dependent.
      std::vector<PatternPortState> port_state(node.children.size());
      const std::string op_key = std::to_string(executor_.NumOps());
      for (std::size_t i = 1; i < node.children.size(); ++i) {
        const LabelId label = node.children[i]->OutputLabel();
        if (label == kInvalidLabel) continue;  // mixed-label input: private
        port_state[i].label = label;
        port_state[i].store = executor_.window_store()->Acquire(
            "atom:" + op_key + ":" + std::to_string(i) + ":" +
            PlanSignature(*node.children[i]));
      }
      op = std::make_unique<PatternOp>(node, std::move(port_state));
      break;
    }
    case LogicalOpKind::kPath: {
      Dfa dfa = Dfa::FromRegex(node.regex);
      std::unique_ptr<PathOpBase> path;
      if (options.path_impl == PathImpl::kSPath) {
        path = std::make_unique<SPathOp>(std::move(dfa), node.output_label);
      } else {
        path = std::make_unique<DeltaPathOp>(std::move(dfa),
                                             node.output_label);
      }
      // PATH operators over structurally identical inputs share one
      // window partition: the adjacency depends only on the input stream,
      // not on the regex, and maintenance is idempotent.
      std::string in_sig = "path-in:";
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) in_sig += ",";
        in_sig += PlanSignature(*node.children[i]);
      }
      path->BindSharedWindow(executor_.window_store()->Acquire(in_sig));
      op = std::move(path);
      break;
    }
  }
  const OpId id = executor_.AddOp(std::move(op));
  for (std::size_t i = 0; i < children.size(); ++i) {
    // PATTERN distinguishes ports; single-input operators merge on port 0.
    const int port =
        node.kind == LogicalOpKind::kPattern ? static_cast<int>(i) : 0;
    SGQ_RETURN_NOT_OK(executor_.Connect(children[i], id, port));
  }
  return id;
}

void QueryProcessor::PushAll(const InputStream& stream) {
  for (const Sge& sge : stream) Push(sge);
  executor_.Flush();
}

}  // namespace sgq

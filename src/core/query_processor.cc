#include "core/query_processor.h"

#include <algorithm>

#include "algebra/translate.h"
#include "common/logging.h"
#include "core/delta_path_op.h"
#include "core/pattern_op.h"
#include "core/spath_op.h"

namespace sgq {

Result<std::unique_ptr<QueryProcessor>> QueryProcessor::Compile(
    const LogicalOp& plan, const Vocabulary& vocab, EngineOptions options) {
  SGQ_RETURN_NOT_OK(ValidatePlan(plan, vocab));
  std::unique_ptr<QueryProcessor> qp(new QueryProcessor());

  // PATTERN and PATH coalesce their own output (Def. 11); re-coalescing at
  // the sink would only repeat the work. UNION/FILTER/WSCAN roots can still
  // emit snapshot-redundant tuples, so the sink coalesces for them.
  const bool root_coalesces = plan.kind == LogicalOpKind::kPattern ||
                              plan.kind == LogicalOpKind::kPath;
  auto sink = std::make_unique<SinkOp>(options.coalesce_output &&
                                       !root_coalesces);
  qp->sink_ = sink.get();

  SGQ_ASSIGN_OR_RETURN(PhysicalOp * root, qp->Build(plan, vocab, options));
  root->SetParent(sink.get(), 0);
  qp->ops_.push_back(std::move(sink));

  // The engine's slide granularity is the finest slide of any scan.
  Timestamp slide = kMaxTimestamp;
  for (const auto& [label, scans] : qp->scans_) {
    (void)label;
    for (const WScanOp* scan : scans) {
      slide = std::min(slide, scan->window().slide);
    }
  }
  qp->slide_ = slide == kMaxTimestamp ? 1 : slide;
  qp->explain_ = plan.ToString(vocab);
  return qp;
}

Result<std::unique_ptr<QueryProcessor>> QueryProcessor::FromQuery(
    const StreamingGraphQuery& query, const Vocabulary& vocab,
    EngineOptions options) {
  SGQ_ASSIGN_OR_RETURN(LogicalPlan plan,
                       TranslateToCanonicalPlan(query, vocab));
  return Compile(*plan, vocab, options);
}

Result<PhysicalOp*> QueryProcessor::Build(const LogicalOp& node,
                                          const Vocabulary& vocab,
                                          const EngineOptions& options) {
  // Children first (ops_ stays in bottom-up order, which TimeAdvanceWave
  // and ProcessBoundary rely on).
  std::vector<PhysicalOp*> children;
  for (const auto& c : node.children) {
    SGQ_ASSIGN_OR_RETURN(PhysicalOp * child, Build(*c, vocab, options));
    children.push_back(child);
  }

  std::unique_ptr<PhysicalOp> op;
  switch (node.kind) {
    case LogicalOpKind::kWScan: {
      auto scan = std::make_unique<WScanOp>(node.input_label, node.window);
      scans_[node.input_label].push_back(scan.get());
      op = std::move(scan);
      break;
    }
    case LogicalOpKind::kFilter:
      op = std::make_unique<FilterOp>(node.predicates);
      break;
    case LogicalOpKind::kUnion:
      op = std::make_unique<UnionOp>(node.output_label);
      break;
    case LogicalOpKind::kPattern:
      op = std::make_unique<PatternOp>(node);
      break;
    case LogicalOpKind::kPath: {
      Dfa dfa = Dfa::FromRegex(node.regex);
      if (options.path_impl == PathImpl::kSPath) {
        op = std::make_unique<SPathOp>(std::move(dfa), node.output_label);
      } else {
        op = std::make_unique<DeltaPathOp>(std::move(dfa),
                                           node.output_label);
      }
      break;
    }
  }
  PhysicalOp* raw = op.get();
  for (std::size_t i = 0; i < children.size(); ++i) {
    // PATTERN distinguishes ports; single-input operators merge on port 0.
    const int port =
        node.kind == LogicalOpKind::kPattern ? static_cast<int>(i) : 0;
    children[i]->SetParent(raw, port);
  }
  ops_.push_back(std::move(op));
  return raw;
}

void QueryProcessor::TimeAdvanceWave(Timestamp now) {
  for (auto& op : ops_) op->OnTimeAdvance(now);
}

void QueryProcessor::ProcessBoundary(Timestamp boundary) {
  Stopwatch timer;
  TimeAdvanceWave(boundary);
  for (auto& op : ops_) op->MaybePurge(boundary);
  slide_accum_seconds_ += timer.ElapsedSeconds();
  // The paper's per-slide latency: all processing attributable to the
  // slide that just closed (arrivals within it plus expiry work).
  slide_latencies_.Record(slide_accum_seconds_);
  slide_accum_seconds_ = 0;
}

void QueryProcessor::AdvanceTo(Timestamp t) {
  if (!started_) {
    current_time_ = t;
    next_boundary_ = (t / slide_) * slide_ + slide_;
    started_ = true;
    return;
  }
  SGQ_CHECK_GE(t, current_time_) << "stream timestamps must be ordered";
  while (next_boundary_ <= t) {
    ProcessBoundary(next_boundary_);
    next_boundary_ += slide_;
  }
  if (t > current_time_) {
    // Exact expiry processing for negative-tuple operators (they check a
    // heap and return immediately when nothing is due).
    Stopwatch timer;
    TimeAdvanceWave(t);
    slide_accum_seconds_ += timer.ElapsedSeconds();
    current_time_ = t;
  }
}

void QueryProcessor::Push(const Sge& sge) {
  AdvanceTo(sge.t);
  current_time_ = sge.t;
  ++edges_pushed_;
  auto it = scans_.find(sge.label);
  if (it == scans_.end()) return;  // label not referenced by the query
  ++edges_processed_;
  Stopwatch timer;
  for (WScanOp* scan : it->second) scan->OnSge(sge);
  slide_accum_seconds_ += timer.ElapsedSeconds();
}

void QueryProcessor::PushAll(const InputStream& stream) {
  for (const Sge& sge : stream) Push(sge);
}

std::size_t QueryProcessor::StateSize() const {
  std::size_t n = 0;
  for (const auto& op : ops_) n += op->StateSize();
  return n;
}

}  // namespace sgq

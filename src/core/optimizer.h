// Plan selection over the SGA plan space — the extension the paper names
// as ongoing work (§8: "designing an SGA-based query optimizer for the
// systematic exploration of the rich plan space using SGA's
// transformation rules").
//
// Two selectors are provided:
//  - a heuristic cost model over logical plans (no data access), and
//  - empirical sampling: run every candidate on a stream prefix and keep
//    the one with the highest measured throughput (micro-benchmark-driven
//    selection, mirroring §7.4's observation that rewritten plans can win
//    by large margins).

#ifndef SGQ_CORE_OPTIMIZER_H_
#define SGQ_CORE_OPTIMIZER_H_

#include <cstddef>

#include "algebra/logical_plan.h"
#include "algebra/transform.h"
#include "model/sgt.h"

namespace sgq {

/// \brief Heuristic cost of a logical plan, in abstract units. Lower is
/// better. The model charges:
///  - every operator boundary (intermediate streams must be emitted,
///    coalesced and re-consumed),
///  - PATTERN join levels (hash tables maintained per level),
///  - PATH automaton size (per-tuple transition fan-out), and
///  - a surcharge for PATH operators fed by derived streams (their inputs
///    were already materialized once).
double EstimatePlanCost(const LogicalOp& plan);

/// \brief Enumerates up to `budget` equivalent plans via the §5.4 rules
/// and returns the one minimizing EstimatePlanCost. The input plan is
/// always a candidate, so the result never regresses under the model.
Result<LogicalPlan> OptimizeHeuristic(const LogicalOp& plan,
                                      Vocabulary* vocab,
                                      std::size_t budget = 32);

/// \brief Enumerates up to `budget` equivalent plans, executes each on
/// `sample` (a stream prefix) and returns the plan with the highest
/// measured throughput. More expensive, but data-aware: it captures
/// effects no static model sees (e.g. the selectivity of the inner
/// pattern for loop-caching plans).
Result<LogicalPlan> OptimizeBySampling(const LogicalOp& plan,
                                       Vocabulary* vocab,
                                       const InputStream& sample,
                                       std::size_t budget = 16);

}  // namespace sgq

#endif  // SGQ_CORE_OPTIMIZER_H_

#include "core/pattern_op.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace sgq {

PatternOp::PatternOp(const LogicalOp& pattern,
                     std::vector<PatternPortState> port_state) {
  SGQ_CHECK(pattern.kind == LogicalOpKind::kPattern);
  num_ports_ = static_cast<int>(pattern.child_vars.size());
  out_label_ = pattern.output_label;

  // Assign dense indexes to variables in order of first appearance.
  FlatMap<std::string, int> var_index;
  auto index_of = [&](const std::string& name) {
    auto [it, inserted] =
        var_index.try_emplace(name, static_cast<int>(var_index.size()));
    (void)inserted;
    return it->second;
  };
  for (const auto& [src, trg] : pattern.child_vars) {
    port_vars_.emplace_back(index_of(src), index_of(trg));
  }
  out_src_var_ = index_of(pattern.out_src_var);
  out_trg_var_ = index_of(pattern.out_trg_var);
  num_vars_ = var_index.size();

  // Level j joins acc(ports 0..j) with port j+1 on their shared variables.
  std::set<int> acc_vars = {port_vars_[0].first, port_vars_[0].second};
  for (int p = 1; p < num_ports_; ++p) {
    Level level;
    for (int v : {port_vars_[p].first, port_vars_[p].second}) {
      if (acc_vars.count(v) > 0) level.key_vars.push_back(v);
    }
    std::sort(level.key_vars.begin(), level.key_vars.end());
    level.key_vars.erase(
        std::unique(level.key_vars.begin(), level.key_vars.end()),
        level.key_vars.end());

    // Move the port's single-atom state into the runtime WindowStore when
    // a partition was provided, the port's label is static, and the level
    // has a join key to probe the index with.
    if (static_cast<std::size_t>(p) < port_state.size() &&
        port_state[static_cast<std::size_t>(p)].store != nullptr &&
        port_state[static_cast<std::size_t>(p)].label != kInvalidLabel &&
        !level.key_vars.empty()) {
      level.store = port_state[static_cast<std::size_t>(p)].store;
      level.store_label = port_state[static_cast<std::size_t>(p)].label;
      const auto& [sv, tv] = port_vars_[static_cast<std::size_t>(p)];
      const bool has_src =
          std::binary_search(level.key_vars.begin(), level.key_vars.end(),
                             sv);
      const bool has_trg =
          std::binary_search(level.key_vars.begin(), level.key_vars.end(),
                             tv);
      if (has_src && has_trg) {
        level.probe = ProbeKind::kOutFiltered;
      } else if (has_src) {
        level.probe = ProbeKind::kOut;
      } else {
        level.probe = ProbeKind::kIn;
        level.store->EnableInIndex();
      }
    }

    levels_.push_back(std::move(level));
    acc_vars.insert(port_vars_[p].first);
    acc_vars.insert(port_vars_[p].second);
  }
}

bool PatternOp::BindPort(int port, const Sgt& tuple, Binding* out) const {
  const auto& [src_var, trg_var] = port_vars_[port];
  if (src_var == trg_var && tuple.src != tuple.trg) return false;
  out->vals.assign(num_vars_, kInvalidVertex);
  out->vals[static_cast<std::size_t>(src_var)] = tuple.src;
  out->vals[static_cast<std::size_t>(trg_var)] = tuple.trg;
  out->iv = tuple.validity;
  return true;
}

PatternOp::Key PatternOp::ExtractKey(const Level& level,
                                     const Binding& b) const {
  Key key;
  for (int v : level.key_vars) {
    key.push_back(b.vals[static_cast<std::size_t>(v)]);
  }
  return key;
}

template <typename Fn>
void PatternOp::ForEachRightMatch(std::size_t level_idx, const Key& key,
                                  Fn&& fn) const {
  const Level& lv = levels_[level_idx];
  const int port = static_cast<int>(level_idx) + 1;
  if (lv.store == nullptr) {
    auto it = lv.right.find(key);
    if (it == lv.right.end()) return;
    for (const Binding& other : it->second) fn(other);
    return;
  }
  // The key vector is aligned with the sorted key_vars.
  auto key_val = [&](int var) {
    const auto pos =
        std::lower_bound(lv.key_vars.begin(), lv.key_vars.end(), var);
    return key[static_cast<std::size_t>(pos - lv.key_vars.begin())];
  };
  const auto& [src_var, trg_var] = port_vars_[static_cast<std::size_t>(port)];
  Binding b;
  auto try_edge = [&](VertexId s, VertexId g, const Interval& iv) {
    const Sgt tuple(s, g, lv.store_label, iv);
    if (BindPort(port, tuple, &b)) fn(b);
  };
  switch (lv.probe) {
    case ProbeKind::kOutFiltered: {
      const VertexId s = key_val(src_var);
      const VertexId g = key_val(trg_var);
      for (const StoredEdge& e : lv.store->OutEdges(s, lv.store_label)) {
        if (e.trg == g) try_edge(s, e.trg, e.validity);
      }
      break;
    }
    case ProbeKind::kOut: {
      const VertexId s = key_val(src_var);
      for (const StoredEdge& e : lv.store->OutEdges(s, lv.store_label)) {
        try_edge(s, e.trg, e.validity);
      }
      break;
    }
    case ProbeKind::kIn: {
      const VertexId g = key_val(trg_var);
      // Reverse-index entries store the *source* in `trg`.
      for (const StoredEdge& e : lv.store->InEdges(g, lv.store_label)) {
        try_edge(e.trg, g, e.validity);
      }
      break;
    }
  }
}

void PatternOp::InsertCoalesced(int level, bool left, const Key& key,
                                Binding b) {
  Level& lv = levels_[static_cast<std::size_t>(level)];
  Table& table = left ? lv.left : lv.right;
  std::size_t& entries = left ? lv.left_entries : lv.right_entries;
  auto [it, inserted] = table.try_emplace(key);
  (void)inserted;
  Bucket& bucket = it->second;
  for (Binding& existing : bucket) {
    if (existing.vals == b.vals && existing.iv.OverlapsOrAdjacent(b.iv)) {
      const Timestamp old_exp = existing.iv.exp;
      existing.iv = existing.iv.Span(b.iv);
      if (existing.iv.exp > old_exp) {
        binding_expiry_.Add(existing.iv.exp, BucketRef{level, left, key});
      }
      return;
    }
  }
  binding_expiry_.Add(b.iv.exp, BucketRef{level, left, key});
  bucket.push_back(&bucket_pool_, std::move(b));
  ++entries;
}

PatternOp::Binding PatternOp::Merge(const Binding& a, const Binding& b) {
  Binding out;
  out.vals = a.vals;
  for (std::size_t i = 0; i < out.vals.size(); ++i) {
    if (out.vals[i] == kInvalidVertex) out.vals[i] = b.vals[i];
  }
  out.iv = a.iv.Intersect(b.iv);
  return out;
}

bool PatternOp::MayReassert(const Binding& b) const {
  const VertexId s = b.vals[static_cast<std::size_t>(out_src_var_)];
  const VertexId t = b.vals[static_cast<std::size_t>(out_trg_var_)];
  if (s != kInvalidVertex && t != kInvalidVertex) {
    return retracted_values_.contains(EdgeRef(s, t, out_label_));
  }
  if (s != kInvalidVertex) return retracted_srcs_.contains(s);
  if (t != kInvalidVertex) return retracted_trgs_.contains(t);
  return true;
}

void PatternOp::Cascade(std::size_t level, const Binding& acc, Mode mode) {
  if (acc.iv.Empty()) return;
  // Reassert replay prune: state writes below are idempotent, so only
  // bindings that can reach a retracted output value matter.
  if (mode == Mode::kReassert && !MayReassert(acc)) return;
  if (level >= levels_.size()) {
    Project(acc, mode);
    return;
  }
  Level& lv = levels_[level];
  const Key key = ExtractKey(lv, acc);
  // kRetract must not touch state; kReassert re-inserts idempotently
  // (identical bindings coalesce away).
  if (mode != Mode::kRetract) {
    InsertCoalesced(static_cast<int>(level), /*left=*/true, key, acc);
  }
  ForEachRightMatch(level, key, [&](const Binding& other) {
    Binding merged = Merge(acc, other);
    Cascade(level + 1, merged, mode);
  });
}

void PatternOp::Project(const Binding& b, Mode mode) {
  const VertexId src = b.vals[static_cast<std::size_t>(out_src_var_)];
  const VertexId trg = b.vals[static_cast<std::size_t>(out_trg_var_)];
  // Payload: the derived edge itself (Def. 19).
  const EdgeRef derived(src, trg, out_label_);
  switch (mode) {
    case Mode::kInsert: {
      Sgt out(src, trg, out_label_, b.iv, {derived});
      if (out_coalescer_.Offer(out)) EmitTuple(out);
      break;
    }
    case Mode::kRetract: {
      Sgt out(src, trg, out_label_, b.iv, {derived}, /*del=*/true);
      out_coalescer_.Forget(derived, b.iv.ts);
      retracted_values_.insert(derived);
      EmitTuple(out);
      break;
    }
    case Mode::kReassert: {
      if (!retracted_values_.contains(derived)) break;
      Sgt out(src, trg, out_label_, b.iv, {derived});
      if (out_coalescer_.Offer(out)) EmitTuple(out);
      break;
    }
  }
}

void PatternOp::OnTuple(int port, const Sgt& tuple) {
  SGQ_CHECK_GE(port, 0);
  SGQ_CHECK_LT(port, num_ports_);
  if (num_ports_ > 1 && tuple.is_deletion) {
    // Unsharded deletion: the two coordination phases composed
    // back-to-back on this instance reproduce the original
    // single-threaded retract + reassert exactly (the extra Forget in
    // ReassertRetracted is a no-op on values already forgotten by the
    // retract cascade).
    ReassertRetracted(RetractForDeletion(port, tuple));
    return;
  }
  Binding b;
  if (!BindPort(port, tuple, &b)) return;

  if (num_ports_ == 1) {
    // A single-atom pattern is a rename/projection: it preserves the input
    // payload so materialized paths stay first-class through it (R3).
    const VertexId src = b.vals[static_cast<std::size_t>(out_src_var_)];
    const VertexId trg = b.vals[static_cast<std::size_t>(out_trg_var_)];
    Sgt out(src, trg, out_label_, b.iv, tuple.payload, tuple.is_deletion);
    if (tuple.is_deletion) {
      out_coalescer_.Forget(out.edge(), out.validity.ts);
      EmitTuple(out);
    } else if (out_coalescer_.Offer(out)) {
      EmitTuple(out);
    }
    return;
  }

  if (port == 0) {
    Cascade(0, b, Mode::kInsert);
    return;
  }
  // Symmetric side: store the port tuple, then probe the accumulated side.
  Level& lv = levels_[static_cast<std::size_t>(port - 1)];
  const Key key = ExtractKey(lv, b);
  if (lv.store != nullptr) {
    SGQ_DCHECK(tuple.label == lv.store_label);
    lv.store->Insert(tuple.src, tuple.trg, lv.store_label, b.iv);
  } else {
    InsertCoalesced(port - 1, /*left=*/false, key, b);
  }
  auto it = lv.left.find(key);
  if (it == lv.left.end()) return;
  for (const Binding& acc : it->second) {
    Binding merged = Merge(acc, b);
    Cascade(static_cast<std::size_t>(port), merged, Mode::kInsert);
  }
}

template <typename Pred>
void PatternOp::ScrubTable(Table* table, std::size_t* entries, Pred&& pred) {
  for (auto it = table->begin(); it != table->end();) {
    Bucket& bucket = it->second;
    std::size_t keep = 0;
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      if (pred(bucket[i])) continue;
      if (keep != i) bucket[keep] = std::move(bucket[i]);
      ++keep;
    }
    *entries -= bucket.size() - keep;
    bucket.truncate(keep);
    if (bucket.empty()) {
      bucket.Release(&bucket_pool_);
      it = table->erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<EdgeRef> PatternOp::RetractForDeletion(int port,
                                                   const Sgt& tuple) {
  Binding b;
  if (!BindPort(port, tuple, &b)) return {};
  // 1. Emit negative tuples for every live output containing the deleted
  //    tuple, by replaying the join cascade without inserting.
  retracted_values_.clear();
  if (port == 0) {
    Cascade(0, b, Mode::kRetract);
  } else {
    Level& lv = levels_[static_cast<std::size_t>(port - 1)];
    const Key key = ExtractKey(lv, b);
    auto it = lv.left.find(key);
    if (it != lv.left.end()) {
      for (const Binding& acc : it->second) {
        Binding merged = Merge(acc, b);
        Cascade(static_cast<std::size_t>(port), merged, Mode::kRetract);
      }
    }
  }

  // 2. Remove the tuple and every accumulated binding that embeds it.
  //    A binding embeds the deleted tuple iff it agrees with it on the
  //    tuple's variable positions (set semantics make that sufficient).
  auto matches = [&](const Binding& candidate) {
    for (std::size_t i = 0; i < num_vars_; ++i) {
      if (b.vals[i] != kInvalidVertex && candidate.vals[i] != b.vals[i]) {
        return false;
      }
    }
    return true;
  };
  if (port == 0) {
    if (!levels_.empty()) {
      ScrubTable(&levels_[0].left, &levels_[0].left_entries, matches);
    }
  } else {
    Level& lv = levels_[static_cast<std::size_t>(port - 1)];
    if (lv.store != nullptr) {
      const auto& [src_var, trg_var] =
          port_vars_[static_cast<std::size_t>(port)];
      lv.store->RemoveValue(b.vals[static_cast<std::size_t>(src_var)],
                            b.vals[static_cast<std::size_t>(trg_var)],
                            lv.store_label);
    } else {
      ScrubTable(&lv.right, &lv.right_entries, matches);
    }
  }
  // Accumulated bindings at levels >= port embed port tuples.
  for (std::size_t j = static_cast<std::size_t>(std::max(1, port));
       j < levels_.size(); ++j) {
    ScrubTable(&levels_[j].left, &levels_[j].left_entries, matches);
  }

  // Sorted drain: the returned order is deterministic, so the sharded
  // executor's cross-shard union is reproducible.
  std::vector<EdgeRef> out(retracted_values_.begin(),
                           retracted_values_.end());
  std::sort(out.begin(), out.end());
  retracted_values_.clear();
  return out;
}

void PatternOp::ReassertRetracted(const std::vector<EdgeRef>& retracted) {
  // Re-assert: an output value retracted (on this shard or, under sharded
  // execution, on a sibling shard) may still hold via a derivation in the
  // surviving local state. Replay the surviving port-0 bindings through
  // the pipeline and re-emit positives for the retracted values.
  // Deletions are rare (§6.2.5), so the full replay is acceptable.
  if (retracted.empty() || levels_.empty()) return;
  retracted_values_.clear();
  retracted_srcs_.clear();
  retracted_trgs_.clear();
  for (const EdgeRef& value : retracted) {
    // A sibling shard's retraction must not leave this shard's coalescer
    // suppressing the re-assertion (no-op for values this shard
    // retracted itself — the retract cascade already forgot them).
    out_coalescer_.Forget(value);
    retracted_values_.insert(value);
    retracted_srcs_.insert(value.src);
    retracted_trgs_.insert(value.trg);
  }
  // Copy (kReassert re-inserts, idempotently, while iterating), sorted by
  // join key so the replay order — and with it the emission order — does
  // not depend on hash-iteration order.
  std::vector<std::pair<Key, const Bucket*>> buckets;
  buckets.reserve(levels_[0].left.size());
  for (const auto& [key, bucket] : levels_[0].left) {
    buckets.emplace_back(key, &bucket);
  }
  std::sort(buckets.begin(), buckets.end(),
            [](const auto& a, const auto& b) {
              return std::lexicographical_compare(
                  a.first.begin(), a.first.end(), b.first.begin(),
                  b.first.end());
            });
  std::vector<Binding> port0;
  for (const auto& [key, bucket] : buckets) {
    (void)key;
    port0.insert(port0.end(), bucket->begin(), bucket->end());
  }
  for (const Binding& acc : port0) {
    Cascade(0, acc, Mode::kReassert);
  }
  retracted_values_.clear();
}

void PatternOp::Purge(Timestamp now) {
  binding_expiry_.DrainDue(now, [&](const BucketRef& ref) {
    Level& lv = levels_[static_cast<std::size_t>(ref.level)];
    Table& table = ref.left ? lv.left : lv.right;
    std::size_t& entries = ref.left ? lv.left_entries : lv.right_entries;
    auto it = table.find(ref.key);
    if (it == table.end()) return;  // stale hint: bucket is gone
    Bucket& bucket = it->second;
    std::size_t keep = 0;
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      Binding& b = bucket[i];
      if (b.iv.exp <= now) continue;  // expired: drop
      if (binding_expiry_.NeedsReAdd(b.iv.exp, now)) {
        binding_expiry_.Add(b.iv.exp, ref);
      }
      if (keep != i) bucket[keep] = std::move(b);
      ++keep;
    }
    entries -= bucket.size() - keep;
    bucket.truncate(keep);
    if (bucket.empty()) {
      bucket.Release(&bucket_pool_);
      table.erase(it);
    }
  });
  for (Level& lv : levels_) {
    if (lv.store != nullptr) lv.store->PurgeExpired(now);
  }
  out_coalescer_.PurgeBefore(now);
}

std::size_t PatternOp::StateSize() const {
  std::size_t n = out_coalescer_.NumKeys();
  for (const Level& lv : levels_) {
    n += lv.left_entries;
    n += lv.store != nullptr ? lv.store->NumEntries() : lv.right_entries;
  }
  return n;
}

std::size_t PatternOp::StateBytes() const {
  // Bucket overflow is pool-backed: count the pool's slabs once instead
  // of per-bucket capacities (inline bucket storage is part of the slot
  // array, covered by capacity_bytes).
  std::size_t n = out_coalescer_.ApproxBytes() +
                  binding_expiry_.ApproxBytes() +
                  bucket_pool_.reserved_bytes();
  auto table_bytes = [](const Table& table) {
    std::size_t bytes = table.capacity_bytes();
    for (const auto& [key, bucket] : table) {
      (void)bucket;
      bytes += key.overflow_bytes();
    }
    return bytes;
  };
  for (const Level& lv : levels_) {
    n += table_bytes(lv.left);
    n += lv.store != nullptr ? lv.store->StateBytes() : table_bytes(lv.right);
  }
  return n;
}

std::size_t PatternOp::num_store_backed_ports() const {
  std::size_t n = 0;
  for (const Level& lv : levels_) {
    if (lv.store != nullptr) ++n;
  }
  return n;
}

namespace {

void PutPatternKey(std::string* out, const SmallVec<uint64_t, 3>& key) {
  PutU32(out, static_cast<std::uint32_t>(key.size()));
  for (uint64_t v : key) PutU64(out, v);
}

SmallVec<uint64_t, 3> GetPatternKey(ByteReader* in) {
  SmallVec<uint64_t, 3> key;
  const std::uint32_t n = in->U32();
  for (std::uint32_t i = 0; i < n && in->ok(); ++i) key.push_back(in->U64());
  return key;
}

bool KeyLess(const SmallVec<uint64_t, 3>& a, const SmallVec<uint64_t, 3>& b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

}  // namespace

void PatternOp::SerializeTable(const Table& table, std::string* out) {
  // Keys sorted (deterministic checkpoint bytes); bucket contents verbatim
  // — every bucket mutation (ScrubTable, Purge) compacts order-preservingly,
  // so restoring bindings in stored order reproduces probe order exactly.
  std::vector<Key> keys;
  keys.reserve(table.size());
  for (const auto& [key, bucket] : table) {
    (void)bucket;
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end(), KeyLess);
  PutU64(out, keys.size());
  for (const Key& key : keys) {
    const auto it = table.find(key);
    PutPatternKey(out, key);
    const Bucket& bucket = it->second;
    PutU32(out, static_cast<std::uint32_t>(bucket.size()));
    for (const Binding& b : bucket) {
      PutU32(out, static_cast<std::uint32_t>(b.vals.size()));
      for (VertexId v : b.vals) PutU64(out, v);
      PutI64(out, b.iv.ts);
      PutI64(out, b.iv.exp);
    }
  }
}

Status PatternOp::DeserializeTable(Table* table, ByteReader* in) {
  const std::uint64_t num_keys = in->U64();
  for (std::uint64_t k = 0; k < num_keys && in->ok(); ++k) {
    Key key = GetPatternKey(in);
    const std::uint32_t n = in->U32();
    if (!in->ok()) break;
    auto [it, inserted] = table->try_emplace(std::move(key));
    if (!inserted) return in->Fail("duplicate join key");
    Bucket& bucket = it->second;
    for (std::uint32_t i = 0; i < n && in->ok(); ++i) {
      Binding b;
      const std::uint32_t nvals = in->U32();
      for (std::uint32_t v = 0; v < nvals && in->ok(); ++v) {
        b.vals.push_back(in->U64());
      }
      b.iv.ts = in->I64();
      b.iv.exp = in->I64();
      bucket.push_back(&bucket_pool_, std::move(b));
    }
  }
  return in->status();
}

void PatternOp::SerializeState(std::string* out) const {
  PutU32(out, static_cast<std::uint32_t>(levels_.size()));
  for (const Level& lv : levels_) {
    SerializeTable(lv.left, out);
    PutU64(out, lv.left_entries);
    // Store-backed right sides live in WindowStore partitions checkpointed
    // by the registry; only the flag round-trips (topology verification).
    PutU8(out, lv.store != nullptr ? 1 : 0);
    if (lv.store == nullptr) {
      SerializeTable(lv.right, out);
      PutU64(out, lv.right_entries);
    }
  }
  PutU64(out, binding_expiry_.num_hints());
  binding_expiry_.VisitEntries([&](Timestamp exp, const BucketRef& ref) {
    PutI64(out, exp);
    PutU32(out, static_cast<std::uint32_t>(ref.level));
    PutU8(out, ref.left ? 1 : 0);
    PutPatternKey(out, ref.key);
  });
  out_coalescer_.SerializeState(out);
}

Status PatternOp::DeserializeState(ByteReader* in) {
  // Only the *private* state must be empty: store-backed ports view the
  // shared WindowStore, whose partitions restore before the ops section.
  std::size_t private_entries = out_coalescer_.NumKeys();
  for (const Level& lv : levels_) {
    private_entries += lv.left_entries;
    private_entries += lv.store != nullptr ? 0 : lv.right_entries;
  }
  if (private_entries != 0) {
    return in->Fail("PATTERN operator not empty before restore");
  }
  const std::uint32_t num_levels = in->U32();
  if (in->ok() && num_levels != levels_.size()) {
    return in->Fail("PATTERN level count mismatch (checkpoint was taken "
                    "with a different plan topology)");
  }
  for (Level& lv : levels_) {
    SGQ_RETURN_NOT_OK(DeserializeTable(&lv.left, in));
    lv.left_entries = in->U64();
    const bool store_backed = in->U8() != 0;
    if (in->ok() && store_backed != (lv.store != nullptr)) {
      return in->Fail("PATTERN store-backed flag mismatch (checkpoint was "
                      "taken with a different plan topology)");
    }
    if (lv.store == nullptr) {
      SGQ_RETURN_NOT_OK(DeserializeTable(&lv.right, in));
      lv.right_entries = in->U64();
    }
  }
  const std::uint64_t num_hints = in->U64();
  for (std::uint64_t i = 0; i < num_hints && in->ok(); ++i) {
    const Timestamp exp = in->I64();
    BucketRef ref;
    ref.level = static_cast<int>(in->U32());
    ref.left = in->U8() != 0;
    ref.key = GetPatternKey(in);
    if (in->ok() &&
        static_cast<std::size_t>(ref.level) >= levels_.size()) {
      return in->Fail("expiry hint references a level out of range");
    }
    binding_expiry_.Add(exp, std::move(ref));
  }
  return out_coalescer_.DeserializeState(in);
}

}  // namespace sgq

// Physical operator interface of the push-based dataflow runtime (§6).
//
// Operators are non-blocking: each arriving sgt is processed immediately
// (the paper's prototype behaves the same way on top of Timely Dataflow;
// see DESIGN.md for the substitution note). Operators do not call each
// other: outputs go through an OutputChannel, and the Executor
// (runtime/executor.h) that owns the operator topology drives
// OnTuple/OnTimeAdvance/MaybePurge waves in topological order. Time
// advances monotonically; OnTimeAdvance lets stateful operators process
// expirations and purge state.

#ifndef SGQ_CORE_PHYSICAL_H_
#define SGQ_CORE_PHYSICAL_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "model/checkpoint.h"
#include "model/sgt.h"
#include "runtime/channel.h"
#include "runtime/shard.h"

namespace sgq {

/// \brief Base class of all physical operators.
///
/// Multi-input operators distinguish inputs by port number. Output goes to
/// the bound OutputChannel; an unbound channel discards emissions (useful
/// for operators probed only for their state).
class PhysicalOp {
 public:
  virtual ~PhysicalOp() = default;

  /// \brief Processes one input tuple arriving on `port`.
  virtual void OnTuple(int port, const Sgt& tuple) = 0;

  /// \brief Processes a micro-batch of tuples arriving on `port`. The
  /// default forwards tuple-at-a-time; operators with batch-amortizable
  /// work (hash-table probes, window inserts) may override.
  virtual void OnBatch(int port, const Sgt* tuples, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) OnTuple(port, tuples[i]);
  }

  /// \brief Notifies the operator that time advanced to `now`. Called for
  /// every distinct input timestamp (so negative-tuple expiry processing is
  /// exact) and at every slide boundary. Default: no-op — operators using
  /// the *direct* approach need no expiry processing (§6.2.4).
  ///
  /// CONTRACT: an operator that overrides this must also override
  /// HasTimeDrivenWork() to return true. The indexed dispatch
  /// (runtime/executor.h, use_query_index) skips the time-advance phase of
  /// every operator that does not declare itself — exact only because
  /// undeclared operators are guaranteed this base no-op.
  virtual void OnTimeAdvance(Timestamp now) { (void)now; }

  /// \brief Purges internal state that expired before `now`. Affects
  /// memory, never results (expired entries are already invisible to
  /// probes because interval intersections come out empty).
  virtual void Purge(Timestamp now) { (void)now; }

  /// \brief Amortized purge used by the runtime at slide boundaries: a full
  /// Purge() scan runs only once the operator's state has doubled since
  /// the last purge, keeping purge cost O(state) amortized instead of
  /// O(state) per slide.
  void MaybePurge(Timestamp now) {
    const std::size_t size = StateSize();
    if (size < purge_watermark_) return;
    Purge(now);
    purge_watermark_ = std::max<std::size_t>(1024, 2 * StateSize());
  }

  /// \brief True when the next MaybePurge will run a full Purge scan. The
  /// sharded executor uses this to skip the worker-pool dispatch on the
  /// (common) slide boundaries where every shard's watermark check would
  /// return immediately.
  bool PurgeDue() const { return StateSize() >= purge_watermark_; }

  /// \brief Sets the expiry-calendar bucket granularity of stateful
  /// operators to the engine's window slide. Called by the executor at
  /// Finalize, before any tuple; the default (slide 1) is always correct,
  /// just finer-bucketed, so standalone operator tests need not call it.
  virtual void ConfigureExpirySlide(Timestamp slide) { (void)slide; }

  /// \brief Operator name for plan explanations.
  virtual std::string Name() const = 0;

  /// \brief How tuples arriving on `port` are distributed across this
  /// operator's shards under sharded execution (num_workers > 1). The
  /// default hash-partitions by edge value, which is correct for any
  /// operator whose state (if any) is keyed by the tuple's endpoints —
  /// stateless operators trivially qualify. Operators whose state can
  /// grow from tuples with unrelated keys (PATH) override to kBroadcast.
  /// Ignored when the operator has a single instance.
  virtual RoutingKey InputRouting(int port) const {
    (void)port;
    return RoutingKey::kEdgeValue;
  }

  /// \brief True when sharded deletion processing must be coordinated
  /// across shards (two-phase retract/reassert; see DeletionCoordination).
  /// Such operators must also implement DeletionCoordination.
  virtual bool NeedsDeletionCoordination() const { return false; }

  /// \brief True when the operator's per-shard output coalescers cannot
  /// see each other's emissions: a value-equivalent result derived on two
  /// shards is emitted twice even though a single instance would have
  /// suppressed the repeat. The executor then runs the deterministic
  /// post-merge stream through a merge-side coalescer at the exchange,
  /// restoring single-worker emission volume (DESIGN.md §2.4). Only
  /// meaningful for operators whose output values can be derived on more
  /// than one shard (multi-atom PATTERN); PATH partitions its output
  /// values by tree root, so its merged stream is already duplicate-free.
  virtual bool CoalesceAtMerge() const { return false; }

  /// \brief True when OnTimeAdvance can perform substantial work (Δ-tree
  /// expiry re-derivation). Time-advance phases fire for *every distinct
  /// input timestamp*, so the sharded executor dispatches them to the
  /// worker pool only for operators that declare heavy time-driven work;
  /// everyone else's (near-)no-op calls run inline on the driver thread,
  /// skipping a pool wakeup per timestamp.
  ///
  /// Mandatory for OnTimeAdvance overriders (see its contract note): the
  /// indexed dispatch runs time-advance phases ONLY for operators that
  /// return true here.
  virtual bool HasTimeDrivenWork() const { return false; }

  /// \brief Approximate number of state entries held (for diagnostics).
  virtual std::size_t StateSize() const { return 0; }

  /// \brief Approximate resident bytes of operator state (containers at
  /// capacity plus arena slabs). Tracks memory wins alongside StateSize's
  /// entry counts; 0 for stateless operators.
  virtual std::size_t StateBytes() const { return 0; }

  /// \brief Binds the output channel tuples are emitted into. The channel
  /// is owned by the Executor (engine mode) or by the caller (direct mode).
  void BindOutput(OutputChannel* out) { out_ = out; }

  /// \brief Checkpoint hook (model/checkpoint.h, DESIGN.md §7): appends
  /// the operator's complete runtime state. Stateful operators override
  /// both hooks; the default (stateless) pair writes/reads nothing.
  /// Contract: at a batch boundary, DeserializeState on a freshly built
  /// instance of the same plan must reproduce state whose future behavior
  /// is byte-identical to the serialized instance's.
  virtual void SerializeState(std::string* out) const { (void)out; }

  /// \brief Restores SerializeState bytes into a freshly built operator
  /// (same plan, same configuration, no tuples processed).
  virtual Status DeserializeState(ByteReader* in) {
    (void)in;
    return Status::OK();
  }

  /// \brief MaybePurge's adaptive threshold — checkpointed and restored
  /// (runtime/executor.h) so the resumed run purges at the same boundaries
  /// as the uninterrupted one, keeping container histories identical.
  std::size_t checkpoint_purge_watermark() const { return purge_watermark_; }
  void restore_purge_watermark(std::size_t watermark) {
    purge_watermark_ = watermark;
  }

 protected:
  /// \brief Pushes an output tuple into the bound output channel.
  void EmitTuple(const Sgt& tuple) {
    if (out_ != nullptr) out_->Push(tuple);
  }

 private:
  OutputChannel* out_ = nullptr;
  std::size_t purge_watermark_ = 1024;
};

/// \brief A source operator: entry point of raw stream elements. The
/// Executor routes each ingested sge to the sources registered for its
/// label.
class SourceOp : public PhysicalOp {
 public:
  /// \brief Processes one raw stream element.
  virtual void OnSge(const Sge& sge) = 0;
};

/// \brief Two-phase deletion protocol for sharded operators whose output
/// values can be derived on several shards (PATTERN: an output pair may
/// have witness derivations owned by different port-0 bindings, hence
/// different shards).
///
/// A single-shard deletion replay cannot decide whether a retracted value
/// survives via another shard's derivations, so the Executor drives the
/// deletion in two barrier-separated phases:
///
///  1. RetractForDeletion on the shard(s) the deletion routes to — emits
///     the negative tuples, scrubs local state, and returns the retracted
///     output values.
///  2. ReassertRetracted with the *union* of all shards' retracted values
///     on every shard — each shard re-emits positives for the values it
///     can still derive, so a value with a surviving witness anywhere is
///     re-asserted after the retraction.
///
/// The unsharded path composes the two phases back-to-back on the single
/// instance, which reproduces the original single-threaded deletion
/// handling exactly.
class DeletionCoordination {
 public:
  virtual ~DeletionCoordination() = default;

  /// \brief Phase 1: replays the deletion of `tuple` (arriving on `port`)
  /// against local pre-deletion state, emitting negative tuples and
  /// scrubbing local state. Returns the retracted output values in a
  /// deterministic (sorted) order.
  virtual std::vector<EdgeRef> RetractForDeletion(int port,
                                                  const Sgt& tuple) = 0;

  /// \brief Phase 2: re-derives every value in `retracted` that local
  /// state still supports and re-emits its positive tuple.
  virtual void ReassertRetracted(const std::vector<EdgeRef>& retracted) = 0;
};

/// \brief Physical implementation choices for the PATH logical operator.
enum class PathImpl {
  kSPath,      ///< Algorithm S-PATH: direct approach (§6.2.4)
  kDeltaPath,  ///< Δ-tree of [57]: negative-tuple approach (§6.2.3)
};

}  // namespace sgq

#endif  // SGQ_CORE_PHYSICAL_H_

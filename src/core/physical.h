// Physical operator interface of the push-based dataflow runtime (§6).
//
// Operators are non-blocking and tuple-at-a-time: each arriving sgt is
// pushed through the operator tree immediately (the paper's prototype
// behaves the same way on top of Timely Dataflow; see DESIGN.md for the
// substitution note). Time advances monotonically; OnTimeAdvance lets
// stateful operators process expirations and purge state.

#ifndef SGQ_CORE_PHYSICAL_H_
#define SGQ_CORE_PHYSICAL_H_

#include <algorithm>
#include <cstdint>
#include <string>

#include "model/sgt.h"

namespace sgq {

/// \brief Base class of all physical operators.
///
/// Tuples flow upward: an operator pushes its outputs to its parent via
/// EmitTuple(). Multi-input operators distinguish inputs by port number.
class PhysicalOp {
 public:
  virtual ~PhysicalOp() = default;

  /// \brief Processes one input tuple arriving on `port`.
  virtual void OnTuple(int port, const Sgt& tuple) = 0;

  /// \brief Notifies the operator that time advanced to `now`. Called for
  /// every distinct input timestamp (so negative-tuple expiry processing is
  /// exact) and at every slide boundary. Default: no-op — operators using
  /// the *direct* approach need no expiry processing (§6.2.4).
  virtual void OnTimeAdvance(Timestamp now) { (void)now; }

  /// \brief Purges internal state that expired before `now`. Affects
  /// memory, never results (expired entries are already invisible to
  /// probes because interval intersections come out empty).
  virtual void Purge(Timestamp now) { (void)now; }

  /// \brief Amortized purge used by the engine at slide boundaries: a full
  /// Purge() scan runs only once the operator's state has doubled since
  /// the last purge, keeping purge cost O(state) amortized instead of
  /// O(state) per slide.
  void MaybePurge(Timestamp now) {
    const std::size_t size = StateSize();
    if (size < purge_watermark_) return;
    Purge(now);
    purge_watermark_ = std::max<std::size_t>(1024, 2 * StateSize());
  }

  /// \brief Operator name for plan explanations.
  virtual std::string Name() const = 0;

  /// \brief Approximate number of state entries held (for diagnostics).
  virtual std::size_t StateSize() const { return 0; }

  void SetParent(PhysicalOp* parent, int port) {
    parent_ = parent;
    parent_port_ = port;
  }

 protected:
  /// \brief Pushes an output tuple to the parent operator.
  void EmitTuple(const Sgt& tuple) {
    if (parent_ != nullptr) parent_->OnTuple(parent_port_, tuple);
  }

 private:
  PhysicalOp* parent_ = nullptr;
  int parent_port_ = 0;
  std::size_t purge_watermark_ = 1024;
};

/// \brief Physical implementation choices for the PATH logical operator.
enum class PathImpl {
  kSPath,      ///< Algorithm S-PATH: direct approach (§6.2.4)
  kDeltaPath,  ///< Δ-tree of [57]: negative-tuple approach (§6.2.3)
};

}  // namespace sgq

#endif  // SGQ_CORE_PHYSICAL_H_

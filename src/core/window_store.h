// Windowed edge store: the snapshot-graph adjacency maintained for the
// stateful physical operators. PATH operators walk it for their traversals
// (Algorithms Expand/Propagate walk "each edge e(v, w) in G_ts") and
// PATTERN operators probe it as the shared single-atom side of their
// symmetric hash joins. Partitions of the shared runtime WindowStore
// (runtime/window_store.h) are WindowEdgeStores.

#ifndef SGQ_CORE_WINDOW_STORE_H_
#define SGQ_CORE_WINDOW_STORE_H_

#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "model/interval.h"
#include "model/sgt.h"

namespace sgq {

/// \brief One stored out-edge: target plus validity. (In the reverse index
/// the same struct stores the *source* in `trg`.)
struct StoredEdge {
  VertexId trg = kInvalidVertex;
  Interval validity;
};

/// \brief Adjacency of the current window content, indexed by
/// (source vertex, label). Value-equivalent edges with overlapping or
/// adjacent intervals are coalesced on insert (Def. 11).
class WindowEdgeStore {
 public:
  /// \brief Inserts an edge valid over `iv`; coalesces with an existing
  /// entry for the same (src, trg, label) when intervals touch.
  void Insert(VertexId src, VertexId trg, LabelId label, Interval iv);

  /// \brief Explicit deletion at instant `t`: truncates every stored
  /// interval of (src, trg, label) to end no later than `t`. Returns true
  /// if any entry was affected.
  bool DeleteAt(VertexId src, VertexId trg, LabelId label, Timestamp t);

  /// \brief Removes every entry of (src, trg, label) regardless of
  /// validity (PATTERN's deletion scrub semantics: the historical
  /// intervals must not feed re-derivations). Returns the number of
  /// entries removed.
  std::size_t RemoveValue(VertexId src, VertexId trg, LabelId label);

  /// \brief Out-edges of `src` with `label` (may contain expired entries;
  /// callers intersect intervals).
  const std::vector<StoredEdge>& OutEdges(VertexId src, LabelId label) const;

  /// \brief In-edges of `trg` with `label`; each entry's `trg` field holds
  /// the *source* vertex. Requires EnableInIndex().
  const std::vector<StoredEdge>& InEdges(VertexId trg, LabelId label) const;

  /// \brief Maintains the reverse (target-indexed) adjacency from now on;
  /// existing content is re-indexed. Consumers that probe by target
  /// (PATTERN levels keyed on the atom's target variable) call this once
  /// at plan-build time.
  void EnableInIndex();
  bool in_index_enabled() const { return in_index_enabled_; }

  /// \brief Drops entries with exp <= now and returns them (diagnostics
  /// and tests). Cheap when nothing expired since the last purge: the
  /// store tracks a lower bound on the earliest expiry, so shared
  /// partitions can be purged by every consumer without repeated
  /// O(state) scans — which also means only the *first* purge at a given
  /// instant sees the dropped edges; do not build re-derivation logic on
  /// the return value of a shared partition.
  std::vector<Sgt> PurgeExpired(Timestamp now);

  std::size_t NumEntries() const { return num_entries_; }

 private:
  using Key = std::pair<VertexId, LabelId>;
  using Adjacency = std::unordered_map<Key, std::vector<StoredEdge>, PairHash>;

  static void InsertInto(Adjacency* adj, VertexId key_vertex, VertexId other,
                         LabelId label, Interval iv);

  Adjacency adjacency_;
  Adjacency in_adjacency_;  ///< reverse index; maintained when enabled
  bool in_index_enabled_ = false;
  std::size_t num_entries_ = 0;
  /// Lower bound on the earliest expiry among stored entries; entries can
  /// only disappear earlier than this via PurgeExpired itself.
  Timestamp min_exp_ = kMaxTimestamp;
};

}  // namespace sgq

#endif  // SGQ_CORE_WINDOW_STORE_H_

// Windowed edge store: the snapshot-graph adjacency maintained for the
// stateful physical operators. PATH operators walk it for their traversals
// (Algorithms Expand/Propagate walk "each edge e(v, w) in G_ts") and
// PATTERN operators probe it as the shared single-atom side of their
// symmetric hash joins. Partitions of the shared runtime WindowStore
// (runtime/window_store.h) are WindowEdgeStores.
//
// State layout (DESIGN.md §"State layout"): the adjacency is a flat hash
// map from (vertex, label) to a SmallRun of StoredEdges — runs of up to
// two edges live inline in the map slot, larger runs overflow into the
// store's slab pool, so probing a key touches one slot plus at most one
// pooled block. Window expiry is driven by a slide-aligned expiry
// calendar: every entry registers a hint at its expiry bucket, and
// PurgeExpired drains only the due buckets — O(expiring bucket), not
// O(total state), when nothing or little expired.

#ifndef SGQ_CORE_WINDOW_STORE_H_
#define SGQ_CORE_WINDOW_STORE_H_

#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/expiry_calendar.h"
#include "common/flat_map.h"
#include "common/hash.h"
#include "model/checkpoint.h"
#include "model/interval.h"
#include "model/sgt.h"

namespace sgq {

/// \brief One stored out-edge: target plus validity. (In the reverse index
/// the same struct stores the *source* in `trg`.)
struct StoredEdge {
  VertexId trg = kInvalidVertex;
  Interval validity;
};

/// \brief Adjacency of the current window content, indexed by
/// (source vertex, label). Value-equivalent edges with overlapping or
/// adjacent intervals are coalesced on insert (Def. 11).
class WindowEdgeStore {
 public:
  /// Two edges inline: most (vertex, label) keys of the evaluation's
  /// streams have degree 1-2; hubs overflow into the pool.
  using EdgeRun = SmallRun<StoredEdge, 2>;

  WindowEdgeStore() = default;
  WindowEdgeStore(const WindowEdgeStore&) = delete;
  WindowEdgeStore& operator=(const WindowEdgeStore&) = delete;

  /// \brief Sets the expiry-calendar bucket granularity to the engine's
  /// window slide (called by the executor at Finalize; the default of 1
  /// is always correct, just finer-bucketed).
  void ConfigureExpirySlide(Timestamp slide) {
    calendar_.ConfigureSlide(slide);
  }

  /// \brief Inserts an edge valid over `iv`; coalesces with an existing
  /// entry for the same (src, trg, label) when intervals touch.
  void Insert(VertexId src, VertexId trg, LabelId label, Interval iv);

  /// \brief Explicit deletion at instant `t`: truncates every stored
  /// interval of (src, trg, label) to end no later than `t`. Returns true
  /// if any entry was affected.
  bool DeleteAt(VertexId src, VertexId trg, LabelId label, Timestamp t);

  /// \brief Removes every entry of (src, trg, label) regardless of
  /// validity (PATTERN's deletion scrub semantics: the historical
  /// intervals must not feed re-derivations). Returns the number of
  /// entries removed.
  std::size_t RemoveValue(VertexId src, VertexId trg, LabelId label);

  /// \brief Out-edges of `src` with `label` (may contain expired entries;
  /// callers intersect intervals).
  const EdgeRun& OutEdges(VertexId src, LabelId label) const;

  /// \brief In-edges of `trg` with `label`; each entry's `trg` field holds
  /// the *source* vertex. Requires EnableInIndex().
  const EdgeRun& InEdges(VertexId trg, LabelId label) const;

  /// \brief Maintains the reverse (target-indexed) adjacency from now on;
  /// existing content is re-indexed. Consumers that probe by target
  /// (PATTERN levels keyed on the atom's target variable) call this once
  /// at plan-build time.
  void EnableInIndex();
  bool in_index_enabled() const { return in_index_enabled_; }

  /// \brief Drops entries with exp <= now and returns them (diagnostics
  /// and tests). Calendar-driven: touches only the buckets whose expiry
  /// range passed, so repeated purges of a shared partition are O(1) when
  /// nothing expired — which also means only the *first* purge at a given
  /// instant sees the dropped edges; do not build re-derivation logic on
  /// the return value of a shared partition.
  std::vector<Sgt> PurgeExpired(Timestamp now);

  std::size_t NumEntries() const { return num_entries_; }

  /// \brief Resident bytes: map capacities, pooled runs, calendar.
  std::size_t StateBytes() const {
    return adjacency_.capacity_bytes() + in_adjacency_.capacity_bytes() +
           pool_.reserved_bytes() + in_pool_.reserved_bytes() +
           calendar_.ApproxBytes();
  }

  /// \brief Total expiry hints verified by purges (diagnostics; the
  /// O(expiring bucket) tests assert this stays 0 while nothing expires).
  std::size_t expiry_hints_drained() const {
    return calendar_.hints_drained();
  }

  /// \brief Checkpoint encoding (model/checkpoint.h, DESIGN.md §7): both
  /// adjacencies with keys in sorted order and per-key run contents
  /// verbatim, plus the expiry calendar's pending hints in drain order.
  /// Every mutation path preserves run order (erase_at, never swap-pop),
  /// so restoring the runs byte-for-byte reproduces the exact traversal
  /// and probe order of the uninterrupted store.
  void SerializeState(std::string* out) const;

  /// \brief Rebuilds the store from SerializeState bytes; requires an
  /// empty store. The in-index flag is adopted from the snapshot — PATH
  /// consumers enable it lazily at runtime (first delete/re-derive), so
  /// it is state, not topology.
  Status DeserializeState(ByteReader* in);

 private:
  using Key = std::pair<VertexId, LabelId>;
  using Adjacency = FlatMap<Key, EdgeRun, PairHash>;

  void InsertInto(Adjacency* adj, SlabPool* pool, VertexId key_vertex,
                  VertexId other, LabelId label, Interval iv);

  /// \brief Removes one entry (trg == `other`, validity == `iv`) from the
  /// reverse index of `key_vertex` (mirrors a drop from the adjacency).
  void RemoveFromInIndex(VertexId key_vertex, VertexId other, LabelId label,
                         const Interval& iv);

  SlabPool pool_;     ///< overflow runs of adjacency_
  SlabPool in_pool_;  ///< overflow runs of in_adjacency_
  Adjacency adjacency_;
  Adjacency in_adjacency_;  ///< reverse index; maintained when enabled
  bool in_index_enabled_ = false;
  std::size_t num_entries_ = 0;
  /// Expiry hints: every live adjacency entry registers its (vertex,
  /// label) key at its expiry bucket; the reverse index is maintained in
  /// lockstep when an entry drops, so it needs no calendar of its own.
  ExpiryCalendar<Key> calendar_;
};

}  // namespace sgq

#endif  // SGQ_CORE_WINDOW_STORE_H_

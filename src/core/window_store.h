// Windowed edge store: the snapshot-graph adjacency maintained by the PATH
// physical operators for their traversals (Algorithms Expand/Propagate walk
// "each edge e(v, w) in G_ts").

#ifndef SGQ_CORE_WINDOW_STORE_H_
#define SGQ_CORE_WINDOW_STORE_H_

#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "model/interval.h"
#include "model/sgt.h"

namespace sgq {

/// \brief One stored out-edge: target plus validity.
struct StoredEdge {
  VertexId trg = kInvalidVertex;
  Interval validity;
};

/// \brief Adjacency of the current window content, indexed by
/// (source vertex, label). Value-equivalent edges with overlapping or
/// adjacent intervals are coalesced on insert (Def. 11).
class WindowEdgeStore {
 public:
  /// \brief Inserts an edge valid over `iv`; coalesces with an existing
  /// entry for the same (src, trg, label) when intervals touch.
  void Insert(VertexId src, VertexId trg, LabelId label, Interval iv);

  /// \brief Explicit deletion at instant `t`: truncates every stored
  /// interval of (src, trg, label) to end no later than `t`. Returns true
  /// if any entry was affected.
  bool DeleteAt(VertexId src, VertexId trg, LabelId label, Timestamp t);

  /// \brief Out-edges of `src` with `label` (may contain expired entries;
  /// callers intersect intervals).
  const std::vector<StoredEdge>& OutEdges(VertexId src, LabelId label) const;

  /// \brief Drops entries with exp <= now; returns the dropped edges
  /// (used by the negative-tuple PATH to drive re-derivation).
  std::vector<Sgt> PurgeExpired(Timestamp now);

  std::size_t NumEntries() const { return num_entries_; }

 private:
  using Key = std::pair<VertexId, LabelId>;
  std::unordered_map<Key, std::vector<StoredEdge>, PairHash> adjacency_;
  std::size_t num_entries_ = 0;
};

}  // namespace sgq

#endif  // SGQ_CORE_WINDOW_STORE_H_

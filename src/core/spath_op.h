// Algorithm S-PATH (§6.2.4): the novel PATH physical operator using the
// *direct approach* — validity intervals make window expirations free
// (expired nodes are simply ignored and purged), with no re-derivation.

#ifndef SGQ_CORE_SPATH_OP_H_
#define SGQ_CORE_SPATH_OP_H_

#include "core/path_base.h"

namespace sgq {

/// \brief Streaming path navigation, direct approach (Algorithm S-PATH).
///
/// Maintains the Δ-PATH spanning forest; for each node it materializes the
/// derivation with the largest expiry timestamp (coalesce with f_agg = max
/// over expiry, Def. 11 / §6.2.4), so expirations can be decided from the
/// node's own interval. Upon arrival of an sgt the operator:
///  1. adds the edge to the window store,
///  2. for every DFA transition (s, label, t), extends each tree whose
///     (src, s) node is co-valid with the edge (Expand when the target node
///     is absent or stale, Propagate when its expiry improves),
///  3. emits a result whenever an accepting node is created or improved.
class SPathOp : public PathOpBase {
 public:
  SPathOp(Dfa dfa, LabelId output_label)
      : PathOpBase(std::move(dfa), output_label) {}

  void OnTuple(int port, const Sgt& tuple) override;
  std::string Name() const override { return "PATH[S-PATH]"; }

 private:
  /// One unit of traversal work: try to attach/improve `child` under
  /// `parent` in the tree rooted at `root`, via `edge` with joint validity
  /// `iv` (already intersected with the parent's interval).
  struct AttachWork {
    VertexId root;
    NodeKey parent;
    NodeKey child;
    EdgeRef via;
    Interval iv;
  };

  /// Processes a worklist seeded with one attach request; performs the
  /// recursive Expand/Propagate traversal iteratively.
  void DrainWorklist(std::vector<AttachWork> work);
};

}  // namespace sgq

#endif  // SGQ_CORE_SPATH_OP_H_

#include "core/engine.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "algebra/translate.h"
#include "common/logging.h"
#include "core/delta_path_op.h"
#include "core/pattern_op.h"
#include "core/spath_op.h"

namespace sgq {

namespace {

ExecutorOptions ToExecutorOptions(const EngineOptions& options) {
  ExecutorOptions exec_options;
  exec_options.batch_size = options.batch_size;
  exec_options.num_workers = options.num_workers == 0 ? 1
                                                      : options.num_workers;
  exec_options.time_advance_parallel_state_bar =
      options.time_advance_parallel_state_bar;
  exec_options.async_ingest = options.async_ingest;
  exec_options.ingest_queue_depth = options.ingest_queue_depth;
  exec_options.pin_workers = options.pin_workers;
  exec_options.ingest_slack = options.ingest_slack;
  exec_options.ingest_parsers =
      options.ingest_parsers == 0 ? 1 : options.ingest_parsers;
  exec_options.use_query_index = options.use_query_index;
  return exec_options;
}

}  // namespace

Engine::Engine(EngineOptions options)
    : options_(std::move(options)), executor_(ToExecutorOptions(options_)) {
  if (options_.num_workers == 0) options_.num_workers = 1;
}

SinkOp* Engine::sink(QueryId q) const {
  SGQ_CHECK_GE(q, 0);
  SGQ_CHECK_LT(static_cast<std::size_t>(q), sinks_.size());
  return sinks_[static_cast<std::size_t>(q)];
}

OpId Engine::QueryRoot(QueryId q) const {
  SGQ_CHECK_GE(q, 0);
  SGQ_CHECK_LT(static_cast<std::size_t>(q), roots_.size());
  return roots_[static_cast<std::size_t>(q)];
}

Result<QueryId> Engine::AddPlan(const LogicalOp& plan,
                                const Vocabulary& vocab) {
  if (finalized_) {
    return Status::Internal("Engine::AddPlan after Finalize");
  }
  SGQ_RETURN_NOT_OK(ValidatePlan(plan, vocab));
  if (!options_.cross_query_sharing) {
    // Sharing scoped to one query: dedup only within this registration.
    subtree_dedup_.clear();
  }
  ops_before_current_plan_ = executor_.NumOps();
  SGQ_ASSIGN_OR_RETURN(OpId root, Build(plan, vocab));

  // PATTERN and PATH coalesce their own output (Def. 11); re-coalescing at
  // the sink would only repeat the work. UNION/FILTER/WSCAN roots can still
  // emit snapshot-redundant tuples, so the sink coalesces for them.
  const bool root_coalesces = plan.kind == LogicalOpKind::kPattern ||
                              plan.kind == LogicalOpKind::kPath;
  auto sink = std::make_unique<SinkOp>(options_.coalesce_output &&
                                       !root_coalesces);
  SinkOp* sink_ptr = sink.get();
  const OpId sink_id = executor_.AddOp(std::move(sink));
  SGQ_RETURN_NOT_OK(executor_.Connect(root, sink_id, 0));

  sinks_.push_back(sink_ptr);
  roots_.push_back(root);
  plan_texts_.push_back(plan.ToString(vocab));
  return static_cast<QueryId>(sinks_.size() - 1);
}

Result<QueryId> Engine::AddQuery(const StreamingGraphQuery& query,
                                 const Vocabulary& vocab) {
  SGQ_ASSIGN_OR_RETURN(LogicalPlan plan,
                       TranslateToCanonicalPlan(query, vocab));
  return AddPlan(*plan, vocab);
}

Status Engine::Finalize() {
  if (finalized_) return Status::Internal("Engine::Finalize called twice");
  SGQ_RETURN_NOT_OK(executor_.Finalize());
  finalized_ = true;
  return Status::OK();
}

void Engine::PushAll(const InputStream& stream) {
  if (options_.async_ingest) {
    // Producer = a cursor over the pre-parsed stream; cheap, but it keeps
    // the async code path identical whether elements come from memory or
    // from a parser (workload/harness.cc runs CSV text through the same
    // pipeline with the parse on the ingest thread).
    std::size_t pos = 0;
    executor_.RunPipelined([&](Sge* buf, std::size_t cap) {
      const std::size_t n = std::min(cap, stream.size() - pos);
      std::copy(stream.begin() + static_cast<std::ptrdiff_t>(pos),
                stream.begin() + static_cast<std::ptrdiff_t>(pos + n), buf);
      pos += n;
      return n;
    });
    return;
  }
  for (const Sge& sge : stream) Push(sge);
  executor_.Flush();
}

std::string Engine::Explain() const {
  std::string out;
  for (std::size_t i = 0; i < plan_texts_.size(); ++i) {
    if (plan_texts_.size() > 1) {
      out += "-- query " + std::to_string(i) + " --\n";
    }
    out += plan_texts_[i];
  }
  out += "-- runtime topology --\n" + executor_.DescribeTopology();
  return out;
}

Result<OpId> Engine::Build(const LogicalOp& node, const Vocabulary& vocab) {
  // Sharing: a subtree whose canonical signature was already compiled —
  // by this query or (with cross_query_sharing) any earlier one — resolves
  // to the existing operator; its channel fans out to the new consumer.
  const std::string sig = PlanSignature(node);
  auto dedup_it = subtree_dedup_.find(sig);
  if (dedup_it != subtree_dedup_.end()) {
    ++shared_subtree_hits_;
    if (static_cast<std::size_t>(dedup_it->second) <
        ops_before_current_plan_) {
      ++cross_query_shared_hits_;
    }
    return dedup_it->second;
  }

  // Children first: the executor's insertion order doubles as its wave
  // order, and channels must point from children to parents.
  std::vector<OpId> children;
  for (const auto& c : node.children) {
    SGQ_ASSIGN_OR_RETURN(OpId child, Build(*c, vocab));
    children.push_back(child);
  }

  // With num_workers > 1 every operator compiles to `workers` shard
  // instances (shard 0 is the primary; `make_shard` builds the replicas).
  // Shard-suffixed WindowStore partitions keep runtime state sharing
  // within one shard index: a partition is only ever touched by one shard,
  // so parallel waves need no locking (DESIGN.md §2.4).
  const std::size_t workers = options_.num_workers;
  std::unique_ptr<PhysicalOp> op;
  std::function<std::unique_ptr<PhysicalOp>(std::size_t)> make_shard;
  switch (node.kind) {
    case LogicalOpKind::kWScan: {
      auto scan = std::make_unique<WScanOp>(node.input_label, node.window);
      const OpId id = executor_.AddOp(std::move(scan));
      // A wildcard scan (input_label == kInvalidLabel) admits every label:
      // it registers in the query index's always-on bucket instead of a
      // per-label posting list. WScanOp emits the arriving sge's own
      // label, so the operator itself needs no special case.
      if (node.input_label == kInvalidLabel) {
        SGQ_RETURN_NOT_OK(
            executor_.RegisterWildcardSource(id, node.window.slide));
      } else {
        SGQ_RETURN_NOT_OK(executor_.RegisterSource(node.input_label, id,
                                                   node.window.slide));
      }
      for (std::size_t s = 1; s < workers; ++s) {
        SGQ_RETURN_NOT_OK(executor_.AddShardReplica(
            id,
            std::make_unique<WScanOp>(node.input_label, node.window)));
      }
      subtree_dedup_.emplace(sig, id);
      return id;
    }
    case LogicalOpKind::kFilter:
      make_shard = [&node](std::size_t) {
        return std::make_unique<FilterOp>(node.predicates);
      };
      op = make_shard(0);
      break;
    case LogicalOpKind::kUnion:
      make_shard = [&node](std::size_t) {
        return std::make_unique<UnionOp>(node.output_label);
      };
      op = make_shard(0);
      break;
    case LogicalOpKind::kPattern: {
      // Single-atom join state lives in the runtime WindowStore. The
      // partitions are per-operator (keyed by the operator's position):
      // deletion retraction replays the join against pre-deletion state,
      // which cross-operator aliasing would make order-dependent. Under
      // sharding they are additionally per-shard: broadcast ports >= 1
      // give every shard its own full replica of the right-side state.
      const std::string op_key = std::to_string(executor_.NumOps());
      make_shard = [this, &node, op_key,
                    workers](std::size_t shard) {
        std::vector<PatternPortState> port_state(node.children.size());
        for (std::size_t i = 1; i < node.children.size(); ++i) {
          const LabelId label = node.children[i]->OutputLabel();
          if (label == kInvalidLabel) continue;  // mixed-label: private
          port_state[i].label = label;
          std::string key = "atom:" + op_key + ":" + std::to_string(i) +
                            ":" + PlanSignature(*node.children[i]);
          if (workers > 1) key += "#shard" + std::to_string(shard);
          port_state[i].store = executor_.window_store()->Acquire(key);
        }
        return std::make_unique<PatternOp>(node, std::move(port_state));
      };
      op = make_shard(0);
      break;
    }
    case LogicalOpKind::kPath: {
      // PATH operators over structurally identical inputs share one
      // window partition: the adjacency depends only on the input stream,
      // not on the regex, and maintenance is idempotent. Under sharding
      // the partition is per shard index (inputs are broadcast, so every
      // shard maintains the full adjacency), and sharing across PATH
      // operators still applies shard-by-shard.
      std::string in_sig = "path-in:";
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) in_sig += ",";
        in_sig += PlanSignature(*node.children[i]);
      }
      make_shard = [this, &node, in_sig,
                    workers](std::size_t shard) -> std::unique_ptr<PhysicalOp> {
        Dfa dfa = Dfa::FromRegex(node.regex);
        std::unique_ptr<PathOpBase> path;
        if (options_.path_impl == PathImpl::kSPath) {
          path =
              std::make_unique<SPathOp>(std::move(dfa), node.output_label);
        } else {
          path = std::make_unique<DeltaPathOp>(std::move(dfa),
                                               node.output_label);
        }
        std::string key = in_sig;
        if (workers > 1) {
          path->ConfigureShard(static_cast<ShardId>(shard), workers);
          key += "#shard" + std::to_string(shard);
        }
        path->BindSharedWindow(executor_.window_store()->Acquire(key));
        return path;
      };
      op = make_shard(0);
      break;
    }
  }
  const OpId id = executor_.AddOp(std::move(op));
  if (workers > 1 && make_shard) {
    for (std::size_t s = 1; s < workers; ++s) {
      SGQ_RETURN_NOT_OK(executor_.AddShardReplica(id, make_shard(s)));
    }
  }
  for (std::size_t i = 0; i < children.size(); ++i) {
    // PATTERN distinguishes ports; single-input operators merge on port 0.
    const int port =
        node.kind == LogicalOpKind::kPattern ? static_cast<int>(i) : 0;
    SGQ_RETURN_NOT_OK(executor_.Connect(children[i], id, port));
  }
  subtree_dedup_.emplace(sig, id);
  return id;
}

}  // namespace sgq

#include "core/engine.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "algebra/translate.h"
#include "common/logging.h"
#include "core/delta_path_op.h"
#include "core/pattern_op.h"
#include "core/spath_op.h"

namespace sgq {

namespace {

ExecutorOptions ToExecutorOptions(const EngineOptions& options) {
  ExecutorOptions exec_options;
  exec_options.batch_size = options.batch_size;
  exec_options.num_workers = options.num_workers == 0 ? 1
                                                      : options.num_workers;
  exec_options.time_advance_parallel_state_bar =
      options.time_advance_parallel_state_bar;
  exec_options.async_ingest = options.async_ingest;
  exec_options.ingest_queue_depth = options.ingest_queue_depth;
  exec_options.pin_workers = options.pin_workers;
  exec_options.ingest_slack = options.ingest_slack;
  exec_options.ingest_parsers =
      options.ingest_parsers == 0 ? 1 : options.ingest_parsers;
  exec_options.use_query_index = options.use_query_index;
  return exec_options;
}

}  // namespace

Engine::Engine(EngineOptions options)
    : options_(std::move(options)), executor_(ToExecutorOptions(options_)) {
  if (options_.num_workers == 0) options_.num_workers = 1;
}

Engine::~Engine() {
  // Join the background checkpoint write; its status has nowhere to go
  // from a destructor (callers who care run WaitForCheckpoint first).
  if (checkpoint_writer_.joinable()) checkpoint_writer_.join();
}

SinkOp* Engine::sink(QueryId q) const {
  SGQ_CHECK_GE(q, 0);
  SGQ_CHECK_LT(static_cast<std::size_t>(q), sinks_.size());
  // A removed query has no sink; callers must check IsLive first.
  SGQ_CHECK(sinks_[static_cast<std::size_t>(q)] != nullptr);
  return sinks_[static_cast<std::size_t>(q)];
}

OpId Engine::QueryRoot(QueryId q) const {
  SGQ_CHECK_GE(q, 0);
  SGQ_CHECK_LT(static_cast<std::size_t>(q), roots_.size());
  return roots_[static_cast<std::size_t>(q)];
}

Result<QueryId> Engine::AddPlan(const LogicalOp& plan,
                                const Vocabulary& vocab) {
  SGQ_RETURN_NOT_OK(ValidatePlan(plan, vocab));
  if (finalized_) {
    // Live attach (DESIGN.md §10): all admission checks run before any
    // mutation, so a refused SUBSCRIBE leaves the engine running. The
    // attach itself lands at a batch boundary.
    SGQ_RETURN_NOT_OK(CheckLiveAttachable(plan));
    executor_.Flush();
  }
  if (!options_.cross_query_sharing) {
    // Sharing scoped to one query: dedup only within this registration.
    subtree_dedup_.clear();
  }
  ops_before_current_plan_ = executor_.NumOps();
  SGQ_ASSIGN_OR_RETURN(OpId root, Build(plan, vocab));

  // PATTERN and PATH coalesce their own output (Def. 11); re-coalescing at
  // the sink would only repeat the work. UNION/FILTER/WSCAN roots can still
  // emit snapshot-redundant tuples, so the sink coalesces for them.
  const bool root_coalesces = plan.kind == LogicalOpKind::kPattern ||
                              plan.kind == LogicalOpKind::kPath;
  auto sink = std::make_unique<SinkOp>(options_.coalesce_output &&
                                       !root_coalesces);
  SinkOp* sink_ptr = sink.get();
  const OpId sink_id = executor_.AddOp(std::move(sink));
  SGQ_RETURN_NOT_OK(executor_.Connect(root, sink_id, 0));
  RecordOp(sink_id, /*sig=*/"", {root}, {});
  if (finalized_) {
    SGQ_RETURN_NOT_OK(executor_.FinalizeNewOps());
  }

  sinks_.push_back(sink_ptr);
  roots_.push_back(root);
  plan_texts_.push_back(plan.ToString(vocab));
  query_live_.push_back(true);
  ++live_queries_;

  // The sharing refcounts: every operator reachable from this query's
  // sink (through compile-time children, shared subtrees included) gains
  // one reference. RemoveQuery decrements the same set.
  const QueryId q = static_cast<QueryId>(sinks_.size() - 1);
  std::vector<OpId> reachable;
  std::vector<OpId> work = {sink_id};
  std::vector<bool> seen(static_cast<std::size_t>(executor_.NumOps()), false);
  while (!work.empty()) {
    const OpId id = work.back();
    work.pop_back();
    if (seen[static_cast<std::size_t>(id)]) continue;
    seen[static_cast<std::size_t>(id)] = true;
    reachable.push_back(id);
    for (OpId child : op_children_[static_cast<std::size_t>(id)]) {
      work.push_back(child);
    }
  }
  for (OpId id : reachable) ++op_refs_[static_cast<std::size_t>(id)];
  query_ops_.push_back(std::move(reachable));
  return q;
}

Status Engine::CheckLiveAttachable(const LogicalOp& plan) const {
  // The slide granularity was fixed at Finalize; a finer window slide
  // would need boundary instants the running clock already passed. Walk
  // the plan BEFORE compiling so refusal has no side effects.
  if (plan.kind == LogicalOpKind::kWScan &&
      plan.window.slide < executor_.slide()) {
    return Status::InvalidArgument(
        "live attach refused: window slide " +
        std::to_string(plan.window.slide) +
        " is finer than the running engine granularity " +
        std::to_string(executor_.slide()) +
        " (fixed when the engine was finalized)");
  }
  for (const auto& child : plan.children) {
    SGQ_RETURN_NOT_OK(CheckLiveAttachable(*child));
  }
  return Status::OK();
}

void Engine::RecordOp(OpId id, std::string sig, std::vector<OpId> children,
                      std::vector<std::string> window_keys) {
  const std::size_t need = static_cast<std::size_t>(id) + 1;
  if (op_refs_.size() < need) {
    op_refs_.resize(need, 0);
    op_sigs_.resize(need);
    op_children_.resize(need);
    op_window_keys_.resize(need);
  }
  op_sigs_[static_cast<std::size_t>(id)] = std::move(sig);
  op_children_[static_cast<std::size_t>(id)] = std::move(children);
  op_window_keys_[static_cast<std::size_t>(id)] = std::move(window_keys);
}

Status Engine::RemoveQuery(QueryId q) {
  if (!finalized_) {
    return Status::Internal("Engine::RemoveQuery before Finalize");
  }
  if (q < 0 || static_cast<std::size_t>(q) >= sinks_.size()) {
    return Status::InvalidArgument("RemoveQuery: unknown query " +
                                   std::to_string(q));
  }
  if (!query_live_[static_cast<std::size_t>(q)]) {
    return Status::InvalidArgument("RemoveQuery: query " + std::to_string(q) +
                                   " was already removed");
  }
  // Detach at a batch boundary: buffered input still belongs to the query.
  executor_.Flush();

  // Decrement the sharing refcounts of every operator this query reaches;
  // the zero-reference subset is the removed subtree. Channels only point
  // child -> parent, so every surviving consumer of a dead operator would
  // keep it reachable from a live sink — dead operators' consumers are
  // therefore all dead, and unlinking only needs the (live child, dead
  // parent) frontier edges. The whole teardown is O(removed subtree).
  std::vector<OpId> dead;
  for (OpId id : query_ops_[static_cast<std::size_t>(q)]) {
    if (--op_refs_[static_cast<std::size_t>(id)] == 0) dead.push_back(id);
  }
  std::vector<std::pair<OpId, OpId>> unlink;
  for (OpId id : dead) {
    const std::size_t i = static_cast<std::size_t>(id);
    // The dedup map must forget the signature or a later registration
    // would resolve to a destroyed operator. (With cross_query_sharing
    // off the map is cleared per registration; the entry may be stale.)
    if (!op_sigs_[i].empty()) {
      auto it = subtree_dedup_.find(op_sigs_[i]);
      if (it != subtree_dedup_.end() && it->second == id) {
        subtree_dedup_.erase(it);
      }
    }
    for (const std::string& key : op_window_keys_[i]) {
      SGQ_RETURN_NOT_OK(executor_.window_store()->Release(key));
    }
    op_window_keys_[i].clear();
    op_window_keys_[i].shrink_to_fit();
    for (OpId child : op_children_[i]) {
      if (op_refs_[static_cast<std::size_t>(child)] > 0) {
        unlink.emplace_back(child, id);
      }
    }
    op_children_[i].clear();
    op_children_[i].shrink_to_fit();
    op_sigs_[i].clear();
    op_sigs_[i].shrink_to_fit();
  }
  SGQ_RETURN_NOT_OK(executor_.RemoveOps(dead, unlink));

  sinks_[static_cast<std::size_t>(q)] = nullptr;
  roots_[static_cast<std::size_t>(q)] = kInvalidOpId;
  query_live_[static_cast<std::size_t>(q)] = false;
  query_ops_[static_cast<std::size_t>(q)].clear();
  query_ops_[static_cast<std::size_t>(q)].shrink_to_fit();
  --live_queries_;
  return Status::OK();
}

bool Engine::IsLive(QueryId q) const {
  SGQ_CHECK_GE(q, 0);
  SGQ_CHECK_LT(static_cast<std::size_t>(q), query_live_.size());
  return query_live_[static_cast<std::size_t>(q)];
}

int Engine::OperatorRefCount(OpId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= op_refs_.size()) return 0;
  return op_refs_[static_cast<std::size_t>(id)];
}

Result<QueryId> Engine::AddQuery(const StreamingGraphQuery& query,
                                 const Vocabulary& vocab) {
  SGQ_ASSIGN_OR_RETURN(LogicalPlan plan,
                       TranslateToCanonicalPlan(query, vocab));
  return AddPlan(*plan, vocab);
}

Status Engine::Finalize() {
  if (finalized_) return Status::Internal("Engine::Finalize called twice");
  SGQ_RETURN_NOT_OK(executor_.Finalize());
  finalized_ = true;
  return Status::OK();
}

void Engine::PushAll(const InputStream& stream) {
  if (options_.async_ingest) {
    // Producer = a cursor over the pre-parsed stream; cheap, but it keeps
    // the async code path identical whether elements come from memory or
    // from a parser (workload/harness.cc runs CSV text through the same
    // pipeline with the parse on the ingest thread).
    std::size_t pos = 0;
    executor_.RunPipelined([&](Sge* buf, std::size_t cap) {
      const std::size_t n = std::min(cap, stream.size() - pos);
      std::copy(stream.begin() + static_cast<std::ptrdiff_t>(pos),
                stream.begin() + static_cast<std::ptrdiff_t>(pos + n), buf);
      pos += n;
      return n;
    });
    return;
  }
  for (const Sge& sge : stream) Push(sge);
  executor_.Flush();
}

std::string Engine::Explain() const {
  std::string out;
  for (std::size_t i = 0; i < plan_texts_.size(); ++i) {
    if (plan_texts_.size() > 1) {
      out += "-- query " + std::to_string(i) +
             (query_live_[i] ? "" : " (removed)") + " --\n";
    }
    out += plan_texts_[i];
  }
  out += "-- runtime topology --\n" + executor_.DescribeTopology();
  return out;
}

// ---------------------------------------------------------------------------
// Checkpoint/restore (DESIGN.md §7)
// ---------------------------------------------------------------------------

namespace {

/// Section names of the engine-owned SGQC sections; anything else in a
/// checkpoint is an extra returned verbatim by Restore.
constexpr const char* kEngineSections[] = {"meta",    "queries", "vocab",
                                           "clock",   "windows", "ops",
                                           "engine"};

bool IsEngineSection(const std::string& name) {
  for (const char* s : kEngineSections) {
    if (name == s) return true;
  }
  return false;
}

void PutKeyValues(
    std::string* out,
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  PutU32(out, static_cast<std::uint32_t>(pairs.size()));
  for (const auto& [key, value] : pairs) {
    PutStr(out, key);
    PutStr(out, value);
  }
}

}  // namespace

std::vector<std::pair<std::string, std::string>> Engine::IdentityKeys()
    const {
  // The options that shape runtime state or emission order: restoring a
  // snapshot under different values would bind state to a topology with
  // different semantics, so Restore refuses on any mismatch.
  return {
      {"path_impl",
       options_.path_impl == PathImpl::kSPath ? "spath" : "delta-path"},
      {"coalesce_output", options_.coalesce_output ? "1" : "0"},
      {"batch_size", std::to_string(options_.batch_size)},
      {"num_workers", std::to_string(options_.num_workers)},
      {"cross_query_sharing", options_.cross_query_sharing ? "1" : "0"},
      {"time_advance_parallel_state_bar",
       std::to_string(options_.time_advance_parallel_state_bar)},
      {"use_query_index", options_.use_query_index ? "1" : "0"},
  };
}

std::vector<std::pair<std::string, std::string>> Engine::InformationalKeys()
    const {
  // Ingest-side knobs change how bytes become elements, not what operator
  // state means — recorded for checkpoint_inspect, never refused.
  return {
      {"ingest_format",
       options_.ingest_format == StreamFormat::kCsv ? "csv" : "binary"},
      {"ingest_parsers", std::to_string(options_.ingest_parsers)},
      {"async_ingest", options_.async_ingest ? "1" : "0"},
      {"ingest_slack", std::to_string(options_.ingest_slack)},
      {"pin_workers", options_.pin_workers ? "1" : "0"},
  };
}

void Engine::EncodeCheckpointSections(
    CheckpointWriter* writer, const Vocabulary* vocab,
    std::vector<std::pair<std::string, std::string>> extra) const {
  std::string meta;
  PutKeyValues(&meta, IdentityKeys());
  PutKeyValues(&meta, InformationalKeys());
  writer->AddSection("meta", std::move(meta));

  // Registration history, not just the live set: (plan, live) per ever-
  // registered query. QueryIds index this list, so a restore target must
  // replay the same adds AND the same removals for ids to line up.
  std::string queries;
  PutU32(&queries, static_cast<std::uint32_t>(plan_texts_.size()));
  for (std::size_t i = 0; i < plan_texts_.size(); ++i) {
    PutStr(&queries, plan_texts_[i]);
    PutU8(&queries, query_live_[i] ? 1 : 0);
  }
  writer->AddSection("queries", std::move(queries));

  if (vocab != nullptr) {
    std::string v;
    const std::size_t num_labels = vocab->NumLabels();
    PutU32(&v, static_cast<std::uint32_t>(num_labels));
    for (std::size_t i = 0; i < num_labels; ++i) {
      const LabelId label = static_cast<LabelId>(i);
      PutStr(&v, vocab->LabelName(label));
      PutU8(&v, vocab->IsInputLabel(label) ? 1 : 0);
    }
    const std::size_t num_vertices = vocab->NumVertices();
    PutU64(&v, num_vertices);
    for (std::size_t i = 0; i < num_vertices; ++i) {
      PutStr(&v, vocab->VertexName(static_cast<VertexId>(i)));
    }
    writer->AddSection("vocab", std::move(v));
  }

  std::string clock;
  executor_.SerializeClock(&clock);
  writer->AddSection("clock", std::move(clock));

  std::string windows;
  executor_.window_store()->SerializeState(&windows);
  writer->AddSection("windows", std::move(windows));

  std::string ops;
  executor_.SerializeOps(&ops);
  writer->AddSection("ops", std::move(ops));

  std::string engine;
  PutU64(&engine, ingested());
  writer->AddSection("engine", std::move(engine));

  for (auto& [name, payload] : extra) {
    writer->AddSection(std::move(name), std::move(payload));
  }
}

Status Engine::Checkpoint(
    const std::string& path, const Vocabulary* vocab,
    std::vector<std::pair<std::string, std::string>> extra) {
  if (!finalized_) {
    return Status::Internal("Engine::Checkpoint before Finalize");
  }
  // One write in flight at a time; a failure of the previous write
  // surfaces here, before the new snapshot replaces its bytes.
  SGQ_RETURN_NOT_OK(WaitForCheckpoint());

  // Serialization is the synchronous part — the only stall the ingest
  // loop observes (checkpoint_write_ns). The durable write (temp file +
  // fsync + atomic rename) runs on the background thread.
  Stopwatch timer;
  CheckpointWriter writer;
  EncodeCheckpointSections(&writer, vocab, std::move(extra));
  std::string image = writer.Encode();
  checkpoint_write_ns_ +=
      static_cast<std::uint64_t>(timer.ElapsedSeconds() * 1e9);
  checkpoint_bytes_ += image.size();

  checkpoint_writer_ =
      std::thread([this, path, image = std::move(image)]() {
        checkpoint_write_status_ = WriteFileDurable(path, image);
      });
  return Status::OK();
}

Status Engine::WaitForCheckpoint() {
  if (checkpoint_writer_.joinable()) checkpoint_writer_.join();
  Status st = checkpoint_write_status_;
  checkpoint_write_status_ = Status::OK();
  return st;
}

Status Engine::Restore(
    const std::string& path, Vocabulary* vocab,
    std::unordered_map<std::string, std::string>* extra_out) {
  if (!finalized_) {
    return Status::Internal("Engine::Restore before Finalize");
  }
  SGQ_ASSIGN_OR_RETURN(CheckpointReader reader,
                       CheckpointReader::ParseFile(path));
  return RestoreFrom(reader, vocab, extra_out);
}

Status Engine::RestoreFrom(
    const CheckpointReader& reader, Vocabulary* vocab,
    std::unordered_map<std::string, std::string>* extra_out) {
  if (ingested() != 0) {
    return Status::Internal("Engine::Restore on a non-fresh engine");
  }

  // 1. Identity keys: refuse a snapshot whose state-affecting options
  //    differ from this engine's (listing every mismatch at once).
  SGQ_ASSIGN_OR_RETURN(ByteReader meta, reader.Open("meta"));
  const auto expected = IdentityKeys();
  const std::uint32_t n_keys = meta.U32();
  if (meta.ok() && n_keys != expected.size()) {
    return meta.Fail("identity key count mismatch (checkpoint format from "
                     "a different engine revision)");
  }
  std::string mismatches;
  for (std::uint32_t i = 0; i < n_keys && meta.ok(); ++i) {
    const std::string key = meta.Str();
    const std::string value = meta.Str();
    if (!meta.ok()) break;
    if (key != expected[i].first) {
      return meta.Fail("unexpected identity key '" + key + "' (want '" +
                       expected[i].first + "')");
    }
    if (value != expected[i].second) {
      mismatches += (mismatches.empty() ? "" : ", ") + key + ": checkpoint " +
                    value + " vs engine " + expected[i].second;
    }
  }
  SGQ_RETURN_NOT_OK(meta.status());
  if (!mismatches.empty()) {
    return meta.Fail("EngineOptions identity mismatch — " + mismatches);
  }

  // 2. Query set: the restored topology must have been rebuilt from the
  //    same plans in the same order.
  SGQ_ASSIGN_OR_RETURN(ByteReader queries, reader.Open("queries"));
  const std::uint32_t n_queries = queries.U32();
  if (queries.ok() && n_queries != plan_texts_.size()) {
    return queries.Fail(
        "query count mismatch: checkpoint has " + std::to_string(n_queries) +
        ", engine has " + std::to_string(plan_texts_.size()));
  }
  for (std::uint32_t i = 0; i < n_queries && queries.ok(); ++i) {
    const std::string text = queries.Str();
    const bool live = queries.U8() != 0;
    if (!queries.ok()) break;
    if (text != plan_texts_[i]) {
      return queries.Fail("query " + std::to_string(i) +
                          " differs from the checkpointed plan");
    }
    if (live != query_live_[i]) {
      return queries.Fail(
          "query " + std::to_string(i) +
          (live ? " is live in the checkpoint but removed in this engine"
                : " is removed in the checkpoint but live in this engine") +
          " — replay the same RemoveQuery history before restoring");
    }
  }
  SGQ_RETURN_NOT_OK(queries.status());

  // 3. Vocabulary: verify-and-adopt — every stored name must intern to
  //    its stored id, so ids in restored state resolve to the same names.
  const CheckpointSection* vocab_section = reader.Find("vocab");
  if (vocab != nullptr && vocab_section != nullptr) {
    SGQ_ASSIGN_OR_RETURN(ByteReader v, reader.Open("vocab"));
    const std::uint32_t num_labels = v.U32();
    for (std::uint32_t i = 0; i < num_labels && v.ok(); ++i) {
      const std::string name = v.Str();
      const bool is_input = v.U8() != 0;
      if (!v.ok()) break;
      Result<LabelId> interned = is_input ? vocab->InternInputLabel(name)
                                          : vocab->InternDerivedLabel(name);
      if (!interned.ok()) {
        return v.Fail("label '" + name +
                      "': " + interned.status().message());
      }
      if (*interned != static_cast<LabelId>(i)) {
        return v.Fail("vocabulary mismatch: label '" + name +
                      "' interned to id " + std::to_string(*interned) +
                      ", checkpoint expects " + std::to_string(i));
      }
    }
    const std::uint64_t num_vertices = v.U64();
    for (std::uint64_t i = 0; i < num_vertices && v.ok(); ++i) {
      const std::string name = v.Str();
      if (!v.ok()) break;
      const VertexId id = vocab->InternVertex(name);
      if (id != static_cast<VertexId>(i)) {
        return v.Fail("vocabulary mismatch: vertex '" + name +
                      "' interned to id " + std::to_string(id) +
                      ", checkpoint expects " + std::to_string(i));
      }
    }
    SGQ_RETURN_NOT_OK(v.ExpectEnd());
  }

  // 4. Runtime state: clock, shared window partitions, per-operator blobs.
  SGQ_ASSIGN_OR_RETURN(ByteReader clock, reader.Open("clock"));
  SGQ_RETURN_NOT_OK(executor_.DeserializeClock(&clock));
  SGQ_RETURN_NOT_OK(clock.ExpectEnd());

  SGQ_ASSIGN_OR_RETURN(ByteReader windows, reader.Open("windows"));
  SGQ_RETURN_NOT_OK(executor_.window_store()->DeserializeState(&windows));
  SGQ_RETURN_NOT_OK(windows.ExpectEnd());

  SGQ_ASSIGN_OR_RETURN(ByteReader ops, reader.Open("ops"));
  SGQ_RETURN_NOT_OK(executor_.DeserializeOps(&ops));
  SGQ_RETURN_NOT_OK(ops.ExpectEnd());

  SGQ_ASSIGN_OR_RETURN(ByteReader engine, reader.Open("engine"));
  restored_ingested_ = engine.U64();
  SGQ_RETURN_NOT_OK(engine.ExpectEnd());

  if (extra_out != nullptr) {
    for (const CheckpointSection& section : reader.sections()) {
      if (!IsEngineSection(section.name)) {
        (*extra_out)[section.name] = std::string(reader.payload(section));
      }
    }
  }
  return Status::OK();
}

Result<OpId> Engine::Build(const LogicalOp& node, const Vocabulary& vocab) {
  // Sharing: a subtree whose canonical signature was already compiled —
  // by this query or (with cross_query_sharing) any earlier one — resolves
  // to the existing operator; its channel fans out to the new consumer.
  const std::string sig = PlanSignature(node);
  auto dedup_it = subtree_dedup_.find(sig);
  if (dedup_it != subtree_dedup_.end()) {
    ++shared_subtree_hits_;
    if (static_cast<std::size_t>(dedup_it->second) <
        ops_before_current_plan_) {
      ++cross_query_shared_hits_;
    }
    return dedup_it->second;
  }

  // Children first: the executor's insertion order doubles as its wave
  // order, and channels must point from children to parents.
  std::vector<OpId> children;
  for (const auto& c : node.children) {
    SGQ_ASSIGN_OR_RETURN(OpId child, Build(*c, vocab));
    children.push_back(child);
  }

  // With num_workers > 1 every operator compiles to `workers` shard
  // instances (shard 0 is the primary; `make_shard` builds the replicas).
  // Shard-suffixed WindowStore partitions keep runtime state sharing
  // within one shard index: a partition is only ever touched by one shard,
  // so parallel waves need no locking (DESIGN.md §2.4).
  const std::size_t workers = options_.num_workers;
  std::unique_ptr<PhysicalOp> op;
  std::function<std::unique_ptr<PhysicalOp>(std::size_t)> make_shard;
  // Window partitions acquired for this operator (all shards). The PATTERN
  // op_key embeds NumOps() at build time, so the keys cannot be recomputed
  // later — RemoveQuery releases exactly this recorded set.
  std::vector<std::string> wkeys;
  switch (node.kind) {
    case LogicalOpKind::kWScan: {
      auto scan = std::make_unique<WScanOp>(node.input_label, node.window);
      const OpId id = executor_.AddOp(std::move(scan));
      // A wildcard scan (input_label == kInvalidLabel) admits every label:
      // it registers in the query index's always-on bucket instead of a
      // per-label posting list. WScanOp emits the arriving sge's own
      // label, so the operator itself needs no special case.
      if (node.input_label == kInvalidLabel) {
        SGQ_RETURN_NOT_OK(
            executor_.RegisterWildcardSource(id, node.window.slide));
      } else {
        SGQ_RETURN_NOT_OK(executor_.RegisterSource(node.input_label, id,
                                                   node.window.slide));
      }
      for (std::size_t s = 1; s < workers; ++s) {
        SGQ_RETURN_NOT_OK(executor_.AddShardReplica(
            id,
            std::make_unique<WScanOp>(node.input_label, node.window)));
      }
      subtree_dedup_.emplace(sig, id);
      RecordOp(id, sig, {}, {});
      return id;
    }
    case LogicalOpKind::kFilter:
      make_shard = [&node](std::size_t) {
        return std::make_unique<FilterOp>(node.predicates);
      };
      op = make_shard(0);
      break;
    case LogicalOpKind::kUnion:
      make_shard = [&node](std::size_t) {
        return std::make_unique<UnionOp>(node.output_label);
      };
      op = make_shard(0);
      break;
    case LogicalOpKind::kPattern: {
      // Single-atom join state lives in the runtime WindowStore. The
      // partitions are per-operator (keyed by the operator's position):
      // deletion retraction replays the join against pre-deletion state,
      // which cross-operator aliasing would make order-dependent. Under
      // sharding they are additionally per-shard: broadcast ports >= 1
      // give every shard its own full replica of the right-side state.
      const std::string op_key = std::to_string(executor_.NumOps());
      make_shard = [this, &node, op_key, workers,
                    &wkeys](std::size_t shard) {
        std::vector<PatternPortState> port_state(node.children.size());
        for (std::size_t i = 1; i < node.children.size(); ++i) {
          const LabelId label = node.children[i]->OutputLabel();
          if (label == kInvalidLabel) continue;  // mixed-label: private
          port_state[i].label = label;
          std::string key = "atom:" + op_key + ":" + std::to_string(i) +
                            ":" + PlanSignature(*node.children[i]);
          if (workers > 1) key += "#shard" + std::to_string(shard);
          port_state[i].store = executor_.window_store()->Acquire(key);
          wkeys.push_back(std::move(key));
        }
        return std::make_unique<PatternOp>(node, std::move(port_state));
      };
      op = make_shard(0);
      break;
    }
    case LogicalOpKind::kPath: {
      // PATH operators over structurally identical inputs share one
      // window partition: the adjacency depends only on the input stream,
      // not on the regex, and maintenance is idempotent. Under sharding
      // the partition is per shard index (inputs are broadcast, so every
      // shard maintains the full adjacency), and sharing across PATH
      // operators still applies shard-by-shard.
      std::string in_sig = "path-in:";
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) in_sig += ",";
        in_sig += PlanSignature(*node.children[i]);
      }
      make_shard = [this, &node, in_sig, workers,
                    &wkeys](std::size_t shard) -> std::unique_ptr<PhysicalOp> {
        Dfa dfa = Dfa::FromRegex(node.regex);
        std::unique_ptr<PathOpBase> path;
        if (options_.path_impl == PathImpl::kSPath) {
          path =
              std::make_unique<SPathOp>(std::move(dfa), node.output_label);
        } else {
          path = std::make_unique<DeltaPathOp>(std::move(dfa),
                                               node.output_label);
        }
        std::string key = in_sig;
        if (workers > 1) {
          path->ConfigureShard(static_cast<ShardId>(shard), workers);
          key += "#shard" + std::to_string(shard);
        }
        path->BindSharedWindow(executor_.window_store()->Acquire(key));
        wkeys.push_back(std::move(key));
        return path;
      };
      op = make_shard(0);
      break;
    }
  }
  const OpId id = executor_.AddOp(std::move(op));
  if (workers > 1 && make_shard) {
    for (std::size_t s = 1; s < workers; ++s) {
      SGQ_RETURN_NOT_OK(executor_.AddShardReplica(id, make_shard(s)));
    }
  }
  for (std::size_t i = 0; i < children.size(); ++i) {
    // PATTERN distinguishes ports; single-input operators merge on port 0.
    const int port =
        node.kind == LogicalOpKind::kPattern ? static_cast<int>(i) : 0;
    SGQ_RETURN_NOT_OK(executor_.Connect(children[i], id, port));
  }
  subtree_dedup_.emplace(sig, id);
  RecordOp(id, sig, std::move(children), std::move(wkeys));
  return id;
}

}  // namespace sgq

// Stateless physical operators: WSCAN, FILTER, UNION, and the result SINK
// (§6.2.1: "standard dataflow implementations of stateless FILTER and UNION
// can be used directly; WSCAN is a map adjusting validity intervals").

#ifndef SGQ_CORE_BASIC_OPS_H_
#define SGQ_CORE_BASIC_OPS_H_

#include <vector>

#include "algebra/logical_plan.h"
#include "core/physical.h"
#include "model/coalesce.h"
#include "model/window.h"

namespace sgq {

/// \brief Physical WSCAN (Def. 16): turns input sges into sgts by
/// assigning the validity interval [t, floor(t/beta)*beta + T).
///
/// A source operator: the Executor routes each ingested sge to the scans
/// registered for its label. The runtime deduplicates structurally
/// identical WSCANs — one operator fans its channel out to every consumer.
class WScanOp : public SourceOp {
 public:
  WScanOp(LabelId label, WindowSpec window)
      : label_(label), window_(window) {}

  /// \brief Entry point used by the engine's stream router.
  void OnSge(const Sge& sge) override;

  void OnTuple(int port, const Sgt& tuple) override;
  std::string Name() const override { return "WSCAN"; }

  LabelId label() const { return label_; }
  const WindowSpec& window() const { return window_; }

 private:
  LabelId label_;
  WindowSpec window_;
};

/// \brief Physical FILTER (Def. 17): forwards sgts satisfying every
/// predicate conjunct over the distinguished attributes.
class FilterOp : public PhysicalOp {
 public:
  explicit FilterOp(std::vector<FilterPredicate> predicates)
      : predicates_(std::move(predicates)) {}

  void OnTuple(int port, const Sgt& tuple) override;
  std::string Name() const override { return "FILTER"; }

  /// \brief True when `tuple` satisfies the conjunction.
  bool Matches(const Sgt& tuple) const;

 private:
  std::vector<FilterPredicate> predicates_;
};

/// \brief Physical UNION (Def. 18): merges streams, optionally relabeling
/// each tuple with the derived output label.
class UnionOp : public PhysicalOp {
 public:
  explicit UnionOp(LabelId output_label) : output_label_(output_label) {}

  void OnTuple(int port, const Sgt& tuple) override;
  std::string Name() const override { return "UNION"; }

 private:
  LabelId output_label_;
};

/// \brief Result sink: collects output sgts, optionally coalescing
/// value-equivalent results to keep snapshot set semantics without
/// redundancy.
class SinkOp : public PhysicalOp {
 public:
  explicit SinkOp(bool coalesce) : coalesce_(coalesce) {}

  void OnTuple(int port, const Sgt& tuple) override;
  void Purge(Timestamp now) override;
  std::string Name() const override { return "SINK"; }
  std::size_t StateSize() const override { return coalescer_.NumKeys(); }

  const std::vector<Sgt>& results() const { return results_; }
  std::vector<Sgt> TakeResults() { return std::move(results_); }
  std::size_t total_emitted() const { return total_emitted_; }

  /// \brief Checkpoint encoding (model/checkpoint.h, DESIGN.md §7): the
  /// dedup coalescer, the buffered results verbatim, and the emission
  /// counter — a restored run re-emits the full prefix, so its output is
  /// byte-comparable against an uninterrupted run.
  void SerializeState(std::string* out) const override;
  Status DeserializeState(ByteReader* in) override;

 private:
  bool coalesce_;
  StreamingCoalescer coalescer_;
  std::vector<Sgt> results_;
  std::size_t total_emitted_ = 0;
};

}  // namespace sgq

#endif  // SGQ_CORE_BASIC_OPS_H_

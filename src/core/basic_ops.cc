#include "core/basic_ops.h"

namespace sgq {

void WScanOp::OnSge(const Sge& sge) {
  if (sge.is_deletion) {
    // Negative tuple (§6.2.5): validity start marks the deletion instant.
    Sgt del(sge.src, sge.trg, sge.label, Interval(sge.t, kMaxTimestamp),
            {sge.edge()}, /*del=*/true);
    EmitTuple(del);
    return;
  }
  const Timestamp exp = window_.ExpiryFor(sge.t);
  Sgt tuple(sge.src, sge.trg, sge.label, Interval(sge.t, exp),
            {sge.edge()});
  EmitTuple(tuple);
}

void WScanOp::OnTuple(int port, const Sgt& tuple) {
  // WSCAN is a leaf; tuples can still be fed directly in tests to model a
  // pre-windowed stream.
  (void)port;
  EmitTuple(tuple);
}

bool FilterOp::Matches(const Sgt& t) const {
  for (const FilterPredicate& p : predicates_) {
    switch (p.kind) {
      case FilterPredicate::Kind::kSrcEquals:
        if (t.src != p.vertex) return false;
        break;
      case FilterPredicate::Kind::kTrgEquals:
        if (t.trg != p.vertex) return false;
        break;
      case FilterPredicate::Kind::kSrcEqualsTrg:
        if (t.src != t.trg) return false;
        break;
      case FilterPredicate::Kind::kLabelEquals:
        if (t.label != p.label) return false;
        break;
    }
  }
  return true;
}

void FilterOp::OnTuple(int port, const Sgt& tuple) {
  (void)port;
  if (Matches(tuple)) EmitTuple(tuple);
}

void UnionOp::OnTuple(int port, const Sgt& tuple) {
  (void)port;
  if (output_label_ == kInvalidLabel || tuple.label == output_label_) {
    EmitTuple(tuple);
    return;
  }
  Sgt relabeled = tuple;
  relabeled.label = output_label_;
  EmitTuple(relabeled);
}

void SinkOp::OnTuple(int port, const Sgt& tuple) {
  (void)port;
  if (tuple.is_deletion) {
    coalescer_.Forget(tuple.edge(), tuple.validity.ts);
    results_.push_back(tuple);
    ++total_emitted_;
    return;
  }
  if (!coalesce_ || coalescer_.Offer(tuple)) {
    results_.push_back(tuple);
    ++total_emitted_;
  }
}

void SinkOp::Purge(Timestamp now) { coalescer_.PurgeBefore(now); }

void SinkOp::SerializeState(std::string* out) const {
  coalescer_.SerializeState(out);
  PutU64(out, results_.size());
  for (const Sgt& t : results_) PutSgt(out, t);
  PutU64(out, total_emitted_);
}

Status SinkOp::DeserializeState(ByteReader* in) {
  if (!results_.empty() || total_emitted_ != 0) {
    return in->Fail("sink not empty before restore");
  }
  SGQ_RETURN_NOT_OK(coalescer_.DeserializeState(in));
  const std::uint64_t n = in->U64();
  if (in->ok()) results_.reserve(n);
  for (std::uint64_t i = 0; i < n && in->ok(); ++i) {
    results_.push_back(GetSgt(in));
  }
  total_emitted_ = in->U64();
  return in->status();
}

}  // namespace sgq

#include "algebra/translate.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "query/normalize.h"

namespace sgq {

namespace {

/// Expression cache: label -> plan template, cloned per use (the exp[] map
/// of Algorithm SGQParser).
class ExpressionMap {
 public:
  ExpressionMap(const StreamingGraphQuery& query, const Vocabulary& vocab)
      : query_(query), vocab_(vocab) {}

  /// Returns a fresh plan computing the streaming graph for `label`.
  Result<LogicalPlan> For(LabelId label) {
    auto it = cache_.find(label);
    if (it != cache_.end()) return it->second->Clone();
    if (vocab_.IsInputLabel(label)) {
      // Algorithm SGQParser line 7: EDB -> WSCAN with the (possibly
      // per-label) window specification.
      LogicalPlan scan = MakeWScan(label, query_.WindowFor(label));
      LogicalPlan copy = scan->Clone();
      cache_.emplace(label, std::move(scan));
      return copy;
    }
    return Status::Internal("predicate '" + vocab_.LabelName(label) +
                            "' requested before its definition (topological "
                            "order violated)");
  }

  void Define(LabelId label, LogicalPlan plan) {
    cache_[label] = std::move(plan);
  }

 private:
  const StreamingGraphQuery& query_;
  const Vocabulary& vocab_;
  std::unordered_map<LabelId, LogicalPlan> cache_;
};

}  // namespace

Result<LogicalPlan> TranslateToCanonicalPlan(
    const StreamingGraphQuery& query, const Vocabulary& vocab) {
  SGQ_RETURN_NOT_OK(query.rq.Validate(vocab));
  const RegularQuery rq = ExpandStarClosures(query.rq);
  SGQ_RETURN_NOT_OK(rq.Validate(vocab));

  SGQ_ASSIGN_OR_RETURN(std::vector<LabelId> topo, rq.TopologicalOrder());
  ExpressionMap exp(query, vocab);

  // Collect closure alias definitions (alias -> base label).
  std::unordered_map<LabelId, LabelId> alias_to_base;
  for (const Rule& r : rq.rules()) {
    for (const BodyAtom& a : r.body) {
      if (a.IsClosure()) {
        SGQ_CHECK(a.closure == ClosureKind::kPlus);
        alias_to_base[a.alias] = a.label;
      }
    }
  }

  for (LabelId label : topo) {
    auto alias_it = alias_to_base.find(label);
    if (alias_it != alias_to_base.end()) {
      // Algorithm SGQParser line 9: transitive closure -> PATH(base+).
      SGQ_ASSIGN_OR_RETURN(LogicalPlan base, exp.For(alias_it->second));
      std::vector<LogicalPlan> children;
      children.push_back(std::move(base));
      exp.Define(label,
                 MakePath(label,
                          Regex::Plus(Regex::Label(alias_it->second)),
                          std::move(children)));
      continue;
    }
    // Algorithm SGQParser lines 11-17: one PATTERN per rule, UNION when a
    // head has several rules.
    std::vector<LogicalPlan> alternatives;
    for (const Rule* rule : rq.RulesFor(label)) {
      std::vector<LogicalPlan> children;
      std::vector<std::pair<std::string, std::string>> child_vars;
      for (const BodyAtom& atom : rule->body) {
        const LabelId effective = atom.IsClosure() ? atom.alias : atom.label;
        SGQ_ASSIGN_OR_RETURN(LogicalPlan child, exp.For(effective));
        children.push_back(std::move(child));
        child_vars.emplace_back(atom.src, atom.trg);
      }
      alternatives.push_back(MakePattern(label, std::move(child_vars),
                                         rule->head_src, rule->head_trg,
                                         std::move(children)));
    }
    if (alternatives.empty()) {
      return Status::Internal("no rule for predicate '" +
                              vocab.LabelName(label) + "'");
    }
    if (alternatives.size() == 1) {
      exp.Define(label, std::move(alternatives[0]));
    } else {
      exp.Define(label, MakeUnion(label, std::move(alternatives)));
    }
  }

  SGQ_ASSIGN_OR_RETURN(LogicalPlan answer, exp.For(rq.answer()));
  SGQ_RETURN_NOT_OK(ValidatePlan(*answer, vocab));
  return answer;
}

namespace {

// Vocabulary-free canonical rendering of a regex (label ids, not names).
std::string RegexSignature(const Regex& r) {
  switch (r.kind) {
    case RegexKind::kEpsilon:
      return "e";
    case RegexKind::kLabel:
      return "l" + std::to_string(r.label);
    case RegexKind::kConcat:
    case RegexKind::kAlt: {
      std::string out = r.kind == RegexKind::kConcat ? "(." : "(|";
      for (const Regex& c : r.children) out += RegexSignature(c);
      return out + ")";
    }
    case RegexKind::kStar:
      return "(" + RegexSignature(r.children[0]) + ")*";
    case RegexKind::kPlus:
      return "(" + RegexSignature(r.children[0]) + ")+";
    case RegexKind::kOpt:
      return "(" + RegexSignature(r.children[0]) + ")?";
  }
  return "?";
}

std::string PredicateSignature(const FilterPredicate& p) {
  return std::to_string(static_cast<int>(p.kind)) + ":" +
         std::to_string(p.vertex) + ":" + std::to_string(p.label);
}

}  // namespace

std::string PlanSignature(const LogicalOp& plan) {
  std::string out;
  switch (plan.kind) {
    case LogicalOpKind::kWScan:
      out = "W(" + std::to_string(plan.input_label) + "," +
            std::to_string(plan.window.size) + "," +
            std::to_string(plan.window.slide) + ")";
      break;
    case LogicalOpKind::kFilter: {
      std::vector<std::string> preds;
      preds.reserve(plan.predicates.size());
      for (const FilterPredicate& p : plan.predicates) {
        preds.push_back(PredicateSignature(p));
      }
      std::sort(preds.begin(), preds.end());  // conjunction commutes
      out = "F(";
      for (std::size_t i = 0; i < preds.size(); ++i) {
        if (i > 0) out += ";";
        out += preds[i];
      }
      out += ")";
      break;
    }
    case LogicalOpKind::kUnion:
      out = "U(" + std::to_string(plan.output_label) + ")";
      break;
    case LogicalOpKind::kPattern: {
      // Variables are alpha-renamed by first occurrence so that patterns
      // differing only in variable names canonicalize to the same
      // signature: the join pipeline depends on the equality structure of
      // the variables, never on their spelling.
      std::unordered_map<std::string, int> canon;
      auto rename = [&canon](const std::string& v) {
        auto [it, inserted] = canon.emplace(v, static_cast<int>(canon.size()));
        (void)inserted;
        return "v" + std::to_string(it->second);
      };
      out = "P(" + std::to_string(plan.output_label) + ";";
      for (const auto& [src, trg] : plan.child_vars) {
        out += rename(src);
        out += ">";
        out += rename(trg);
        out += ";";
      }
      out += rename(plan.out_src_var);
      out += ">";
      out += rename(plan.out_trg_var);
      out += ")";
      break;
    }
    case LogicalOpKind::kPath:
      out = "R(" + std::to_string(plan.output_label) + ";" +
            RegexSignature(plan.regex) + ")";
      break;
  }
  out += "[";
  for (std::size_t i = 0; i < plan.children.size(); ++i) {
    if (i > 0) out += ",";
    out += PlanSignature(*plan.children[i]);
  }
  out += "]";
  return out;
}

namespace {

void CollectAdmission(const LogicalOp& plan, AdmissionPredicate* out) {
  if (plan.kind == LogicalOpKind::kWScan) {
    if (plan.input_label == kInvalidLabel) {
      out->wildcard = true;
    } else {
      out->labels.push_back(plan.input_label);
    }
    return;
  }
  for (const auto& child : plan.children) CollectAdmission(*child, out);
}

}  // namespace

AdmissionPredicate PlanAdmission(const LogicalOp& plan) {
  AdmissionPredicate out;
  CollectAdmission(plan, &out);
  std::sort(out.labels.begin(), out.labels.end());
  out.labels.erase(std::unique(out.labels.begin(), out.labels.end()),
                   out.labels.end());
  return out;
}

}  // namespace sgq

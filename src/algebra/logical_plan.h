// Logical Streaming Graph Algebra (SGA) plans (paper §5.1).
//
// SGA has five operators: WSCAN (Def. 16), FILTER (Def. 17), UNION
// (Def. 18), PATTERN (Def. 19) and PATH (Def. 20). A logical plan is an
// operator tree whose leaves are WSCANs over input graph streams. Plans are
// value-owned trees (unique_ptr children) with deep Clone() so that the
// transformation rules (transform.h) can rewrite copies freely.

#ifndef SGQ_ALGEBRA_LOGICAL_PLAN_H_
#define SGQ_ALGEBRA_LOGICAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "model/types.h"
#include "model/vocabulary.h"
#include "model/window.h"
#include "regex/regex.h"

namespace sgq {

/// \brief SGA operator kinds.
enum class LogicalOpKind {
  kWScan,    ///< windowing scan over an input graph stream
  kFilter,   ///< predicate over distinguished attributes
  kUnion,    ///< stream merge with optional relabeling
  kPattern,  ///< streaming subgraph pattern (conjunctive join)
  kPath,     ///< streaming path navigation (RPQ over labels)
};

/// \brief One conjunct of a FILTER predicate (Def. 17 restricts predicates
/// to the distinguished attributes src, trg, label).
struct FilterPredicate {
  enum class Kind {
    kSrcEquals,     ///< src == vertex
    kTrgEquals,     ///< trg == vertex
    kSrcEqualsTrg,  ///< src == trg (self-loop test)
    kLabelEquals,   ///< label == label_id (logical partitioning, Def. 9)
  };
  Kind kind = Kind::kLabelEquals;
  VertexId vertex = kInvalidVertex;
  LabelId label = kInvalidLabel;

  bool operator==(const FilterPredicate& o) const {
    return kind == o.kind && vertex == o.vertex && label == o.label;
  }
};

/// \brief A node of a logical SGA plan.
///
/// Field usage per kind:
///  - kWScan:   input_label, window
///  - kFilter:  predicates (conjunction), 1 child
///  - kUnion:   output_label (optional relabel), >= 1 children
///  - kPattern: child_vars (one (src,trg) variable pair per child),
///              out_src_var/out_trg_var, output_label
///  - kPath:    regex, output_label, children produce the alphabet streams
struct LogicalOp {
  LogicalOpKind kind = LogicalOpKind::kWScan;
  std::vector<std::unique_ptr<LogicalOp>> children;

  // kWScan
  LabelId input_label = kInvalidLabel;
  WindowSpec window;

  // kFilter
  std::vector<FilterPredicate> predicates;

  // kUnion / kPattern / kPath
  LabelId output_label = kInvalidLabel;

  // kPattern
  std::vector<std::pair<std::string, std::string>> child_vars;
  std::string out_src_var;
  std::string out_trg_var;

  // kPath
  Regex regex;

  /// \brief Deep copy.
  std::unique_ptr<LogicalOp> Clone() const;

  /// \brief The label of the sgts this operator emits; kInvalidLabel for a
  /// UNION that merges without relabeling (tuples keep child labels).
  LabelId OutputLabel() const;

  /// \brief Pretty-printed tree (one node per line, indented).
  std::string ToString(const Vocabulary& vocab, int indent = 0) const;

  /// \brief Structural equality (used by plan-space enumeration to dedup).
  bool Equals(const LogicalOp& other) const;

  /// \brief Number of nodes in this subtree.
  std::size_t Size() const;
};

using LogicalPlan = std::unique_ptr<LogicalOp>;

/// \name Plan construction helpers
/// @{
LogicalPlan MakeWScan(LabelId input_label, WindowSpec window);
LogicalPlan MakeFilter(std::vector<FilterPredicate> preds, LogicalPlan child);
LogicalPlan MakeUnion(LabelId output_label,
                      std::vector<LogicalPlan> children);
LogicalPlan MakePattern(LabelId output_label,
                        std::vector<std::pair<std::string, std::string>>
                            child_vars,
                        std::string out_src_var, std::string out_trg_var,
                        std::vector<LogicalPlan> children);
LogicalPlan MakePath(LabelId output_label, Regex regex,
                     std::vector<LogicalPlan> children);
/// @}

/// \brief Validates plan well-formedness: child counts, PATTERN variable
/// sanity (output vars bound, child count matches child_vars), PATH regex
/// alphabet covered by child output labels.
Status ValidatePlan(const LogicalOp& plan, const Vocabulary& vocab);

}  // namespace sgq

#endif  // SGQ_ALGEBRA_LOGICAL_PLAN_H_

#include "algebra/logical_plan.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/logging.h"

namespace sgq {

std::unique_ptr<LogicalOp> LogicalOp::Clone() const {
  auto copy = std::make_unique<LogicalOp>();
  copy->kind = kind;
  copy->input_label = input_label;
  copy->window = window;
  copy->predicates = predicates;
  copy->output_label = output_label;
  copy->child_vars = child_vars;
  copy->out_src_var = out_src_var;
  copy->out_trg_var = out_trg_var;
  copy->regex = regex;
  for (const auto& c : children) copy->children.push_back(c->Clone());
  return copy;
}

LabelId LogicalOp::OutputLabel() const {
  switch (kind) {
    case LogicalOpKind::kWScan:
      return input_label;
    case LogicalOpKind::kFilter:
      return children.empty() ? kInvalidLabel : children[0]->OutputLabel();
    case LogicalOpKind::kUnion:
      if (output_label != kInvalidLabel) return output_label;
      // Without relabeling the union is homogeneous only if all children
      // agree.
      if (!children.empty()) {
        LabelId l = children[0]->OutputLabel();
        for (const auto& c : children) {
          if (c->OutputLabel() != l) return kInvalidLabel;
        }
        return l;
      }
      return kInvalidLabel;
    case LogicalOpKind::kPattern:
    case LogicalOpKind::kPath:
      return output_label;
  }
  return kInvalidLabel;
}

std::string LogicalOp::ToString(const Vocabulary& vocab, int indent) const {
  std::ostringstream os;
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  os << pad;
  switch (kind) {
    case LogicalOpKind::kWScan:
      os << "WSCAN[" << vocab.LabelName(input_label) << ", "
         << window.ToString() << "]";
      break;
    case LogicalOpKind::kFilter: {
      os << "FILTER[";
      for (std::size_t i = 0; i < predicates.size(); ++i) {
        if (i > 0) os << " && ";
        const FilterPredicate& p = predicates[i];
        switch (p.kind) {
          case FilterPredicate::Kind::kSrcEquals:
            os << "src=" << vocab.VertexName(p.vertex);
            break;
          case FilterPredicate::Kind::kTrgEquals:
            os << "trg=" << vocab.VertexName(p.vertex);
            break;
          case FilterPredicate::Kind::kSrcEqualsTrg:
            os << "src=trg";
            break;
          case FilterPredicate::Kind::kLabelEquals:
            os << "label=" << vocab.LabelName(p.label);
            break;
        }
      }
      os << "]";
      break;
    }
    case LogicalOpKind::kUnion:
      os << "UNION";
      if (output_label != kInvalidLabel) {
        os << "[" << vocab.LabelName(output_label) << "]";
      }
      break;
    case LogicalOpKind::kPattern: {
      os << "PATTERN[" << vocab.LabelName(output_label) << "; ";
      for (std::size_t i = 0; i < child_vars.size(); ++i) {
        if (i > 0) os << ", ";
        os << "(" << child_vars[i].first << "," << child_vars[i].second
           << ")";
      }
      os << " -> (" << out_src_var << "," << out_trg_var << ")]";
      break;
    }
    case LogicalOpKind::kPath:
      os << "PATH[" << vocab.LabelName(output_label) << "; "
         << regex.ToString(vocab) << "]";
      break;
  }
  os << "\n";
  for (const auto& c : children) os << c->ToString(vocab, indent + 1);
  return os.str();
}

bool LogicalOp::Equals(const LogicalOp& other) const {
  if (kind != other.kind || input_label != other.input_label ||
      !(window == other.window) || !(predicates == other.predicates) ||
      output_label != other.output_label ||
      child_vars != other.child_vars || out_src_var != other.out_src_var ||
      out_trg_var != other.out_trg_var || !(regex == other.regex) ||
      children.size() != other.children.size()) {
    return false;
  }
  for (std::size_t i = 0; i < children.size(); ++i) {
    if (!children[i]->Equals(*other.children[i])) return false;
  }
  return true;
}

std::size_t LogicalOp::Size() const {
  std::size_t n = 1;
  for (const auto& c : children) n += c->Size();
  return n;
}

LogicalPlan MakeWScan(LabelId input_label, WindowSpec window) {
  auto op = std::make_unique<LogicalOp>();
  op->kind = LogicalOpKind::kWScan;
  op->input_label = input_label;
  op->window = window;
  return op;
}

LogicalPlan MakeFilter(std::vector<FilterPredicate> preds,
                       LogicalPlan child) {
  auto op = std::make_unique<LogicalOp>();
  op->kind = LogicalOpKind::kFilter;
  op->predicates = std::move(preds);
  op->children.push_back(std::move(child));
  return op;
}

LogicalPlan MakeUnion(LabelId output_label,
                      std::vector<LogicalPlan> children) {
  auto op = std::make_unique<LogicalOp>();
  op->kind = LogicalOpKind::kUnion;
  op->output_label = output_label;
  op->children = std::move(children);
  return op;
}

LogicalPlan MakePattern(
    LabelId output_label,
    std::vector<std::pair<std::string, std::string>> child_vars,
    std::string out_src_var, std::string out_trg_var,
    std::vector<LogicalPlan> children) {
  auto op = std::make_unique<LogicalOp>();
  op->kind = LogicalOpKind::kPattern;
  op->output_label = output_label;
  op->child_vars = std::move(child_vars);
  op->out_src_var = std::move(out_src_var);
  op->out_trg_var = std::move(out_trg_var);
  op->children = std::move(children);
  return op;
}

LogicalPlan MakePath(LabelId output_label, Regex regex,
                     std::vector<LogicalPlan> children) {
  auto op = std::make_unique<LogicalOp>();
  op->kind = LogicalOpKind::kPath;
  op->output_label = output_label;
  op->regex = std::move(regex);
  op->children = std::move(children);
  return op;
}

Status ValidatePlan(const LogicalOp& plan, const Vocabulary& vocab) {
  switch (plan.kind) {
    case LogicalOpKind::kWScan:
      if (!plan.children.empty()) {
        return Status::InvalidArgument("WSCAN must be a leaf");
      }
      // input_label == kInvalidLabel is the wildcard scan: it admits every
      // stream label (query-index always-on bucket) and emits each sge
      // under its own label.
      if (plan.window.size <= 0 || plan.window.slide <= 0) {
        return Status::InvalidArgument("WSCAN window must be positive");
      }
      break;
    case LogicalOpKind::kFilter:
      if (plan.children.size() != 1) {
        return Status::InvalidArgument("FILTER must have exactly one child");
      }
      break;
    case LogicalOpKind::kUnion:
      if (plan.children.empty()) {
        return Status::InvalidArgument("UNION needs at least one child");
      }
      if (plan.output_label != kInvalidLabel &&
          vocab.IsInputLabel(plan.output_label)) {
        return Status::InvalidArgument(
            "UNION output label must be derived (Def. 18)");
      }
      break;
    case LogicalOpKind::kPattern: {
      if (plan.children.empty()) {
        return Status::InvalidArgument("PATTERN needs at least one child");
      }
      if (plan.children.size() != plan.child_vars.size()) {
        return Status::InvalidArgument(
            "PATTERN child count does not match variable pairs");
      }
      if (vocab.IsInputLabel(plan.output_label)) {
        return Status::InvalidArgument(
            "PATTERN output label must be derived (Def. 19)");
      }
      std::set<std::string> vars;
      for (const auto& [s, t] : plan.child_vars) {
        vars.insert(s);
        vars.insert(t);
      }
      if (vars.count(plan.out_src_var) == 0 ||
          vars.count(plan.out_trg_var) == 0) {
        return Status::InvalidArgument(
            "PATTERN output endpoints must be variables of the pattern");
      }
      break;
    }
    case LogicalOpKind::kPath: {
      if (plan.children.empty()) {
        return Status::InvalidArgument("PATH needs at least one child");
      }
      if (vocab.IsInputLabel(plan.output_label)) {
        return Status::InvalidArgument(
            "PATH output label must be derived (Def. 20)");
      }
      // Every alphabet label must be produced by some child.
      std::set<LabelId> produced;
      for (const auto& c : plan.children) {
        const LabelId l = c->OutputLabel();
        if (l == kInvalidLabel) {
          return Status::InvalidArgument(
              "PATH child produces tuples without a single label");
        }
        produced.insert(l);
      }
      for (LabelId l : plan.regex.Alphabet()) {
        if (produced.count(l) == 0) {
          return Status::InvalidArgument("PATH regex label '" +
                                         vocab.LabelName(l) +
                                         "' is not produced by any child");
        }
      }
      break;
    }
  }
  for (const auto& c : plan.children) {
    SGQ_RETURN_NOT_OK(ValidatePlan(*c, vocab));
  }
  return Status::OK();
}

}  // namespace sgq

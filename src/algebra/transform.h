// SGA transformation rules (paper §5.4) and plan-space enumeration.
//
// Rules implemented (each Try* matches at the ROOT of the given subtree and
// returns the rewritten plan, or nullptr when it does not apply):
//
//  WSCAN commutation:
//   R1  W(sigma(S))        == sigma(W(S))       (filter push-down/pull-up)
//   R2  W(S1 u S2)         == W(S1) u W(S2)     (union split/merge)
//  PATH rules:
//   R3  P[d, r1|r2](...)   == U[d](P[d,r1], P[d,r2])        (alternation)
//   R4  P[d, r1.r2](...)   == PATTERN[d](P[l1,r1], P[l2,r2]) (concatenation)
//       with the inverse *fusion* rules R4' (PATTERN of a linear chain of
//       PATH/WSCAN children fuses into one PATH with a concatenated regex)
//       and R5' (PATH[e+] over the single producer of e fuses the producer's
//       regex under the plus: the plans P1-P3 of §7.4).
//
// EnumeratePlans applies the rule set exhaustively (bounded) at every node
// to produce the space of equivalent plans the paper's Figure 12-14
// micro-benchmarks explore.

#ifndef SGQ_ALGEBRA_TRANSFORM_H_
#define SGQ_ALGEBRA_TRANSFORM_H_

#include <vector>

#include "algebra/logical_plan.h"

namespace sgq {

/// \brief R1 (push down): FILTER(WSCAN) -> WSCAN under FILTER's semantics.
/// Physically the filter drops sgts before windowing state is built.
LogicalPlan TryPushFilterBelowWScan(const LogicalOp& plan);

/// \brief R1 (pull up): WSCAN-composed filter back above (inverse of R1).
LogicalPlan TryPullFilterAboveWScan(const LogicalOp& plan);

/// \brief R2: FILTER(UNION(..)) -> UNION(FILTER(..), FILTER(..)).
LogicalPlan TryPushFilterBelowUnion(const LogicalOp& plan);

/// \brief R3 (split): PATH with a top-level alternation regex becomes a
/// UNION of PATHs, one per alternative. Children are routed to the
/// alternative(s) whose alphabet needs them.
LogicalPlan TrySplitPathAlternation(const LogicalOp& plan);

/// \brief R3 (merge): UNION[d] of PATH[d] children over compatible inputs
/// becomes a single PATH with an alternation regex.
LogicalPlan TryMergePathAlternation(const LogicalOp& plan);

/// \brief R4 (split): PATH[d, r1 . r2] -> PATTERN[d] joining PATH over r1
/// with PATH over r2. Applies only when neither r1 nor r2 accepts the
/// empty word (otherwise the join would lose zero-length matches); fresh
/// derived labels for the two sub-paths are interned into `vocab`.
LogicalPlan TrySplitPathConcat(const LogicalOp& plan, Vocabulary* vocab);

/// \brief R4' (fuse): a PATTERN whose children form a linear variable chain
/// x0-x1-...-xk with output (x0, xk) fuses into a single PATH whose regex
/// is the concatenation of the children's regexes (a child PATH contributes
/// its regex; a scan/union child contributes its output label).
LogicalPlan TryFusePatternChain(const LogicalOp& plan);

/// \brief R5' (fuse): PATH[d, e+] (or e*) whose single child is the
/// producer of label e fuses the producer's regex under the closure:
/// PATH[d, e+](PATH[e, r](X)) -> PATH[d, r+](X). This generates the novel
/// plans of §7.4 (e.g. Q4's P1 = PATH[(a.b.c)+]).
LogicalPlan TryFuseClosureOverProducer(const LogicalOp& plan);

/// \brief Applies every rule at every node, breadth-first, deduplicating
/// structurally equal plans, until no new plan is found or `limit` plans
/// were produced. The input plan is always plans[0].
std::vector<LogicalPlan> EnumeratePlans(const LogicalOp& root,
                                        Vocabulary* vocab,
                                        std::size_t limit = 64);

}  // namespace sgq

#endif  // SGQ_ALGEBRA_TRANSFORM_H_

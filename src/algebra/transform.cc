#include "algebra/transform.h"

#include <functional>
#include <set>
#include <sstream>

#include "common/logging.h"

namespace sgq {

namespace {

/// True when L(r) contains the empty word.
bool AcceptsEmpty(const Regex& r) {
  switch (r.kind) {
    case RegexKind::kEpsilon:
    case RegexKind::kStar:
    case RegexKind::kOpt:
      return true;
    case RegexKind::kLabel:
      return false;
    case RegexKind::kConcat:
      for (const Regex& c : r.children) {
        if (!AcceptsEmpty(c)) return false;
      }
      return true;
    case RegexKind::kAlt:
      for (const Regex& c : r.children) {
        if (AcceptsEmpty(c)) return true;
      }
      return false;
    case RegexKind::kPlus:
      return AcceptsEmpty(r.children[0]);
  }
  return false;
}

/// Deterministic serialization used to mint stable fresh label names so that
/// repeated applications of the same rewrite are structurally equal.
std::string SerializeRegex(const Regex& r) {
  std::ostringstream os;
  switch (r.kind) {
    case RegexKind::kEpsilon:
      os << "e";
      break;
    case RegexKind::kLabel:
      os << "L" << r.label;
      break;
    case RegexKind::kConcat:
      os << "C(";
      for (const Regex& c : r.children) os << SerializeRegex(c) << ",";
      os << ")";
      break;
    case RegexKind::kAlt:
      os << "A(";
      for (const Regex& c : r.children) os << SerializeRegex(c) << ",";
      os << ")";
      break;
    case RegexKind::kStar:
      os << "S(" << SerializeRegex(r.children[0]) << ")";
      break;
    case RegexKind::kPlus:
      os << "P(" << SerializeRegex(r.children[0]) << ")";
      break;
    case RegexKind::kOpt:
      os << "O(" << SerializeRegex(r.children[0]) << ")";
      break;
  }
  return os.str();
}

/// Clones the children of `plan` whose output label occurs in `alphabet`.
std::vector<LogicalPlan> RouteChildren(const LogicalOp& plan,
                                       const std::vector<LabelId>& alphabet) {
  std::set<LabelId> needed(alphabet.begin(), alphabet.end());
  std::vector<LogicalPlan> out;
  for (const auto& c : plan.children) {
    if (needed.count(c->OutputLabel()) > 0) out.push_back(c->Clone());
  }
  return out;
}

/// Appends `child` to `into` unless a structurally equal plan is present.
void AddUniqueChild(std::vector<LogicalPlan>* into, LogicalPlan child) {
  for (const auto& existing : *into) {
    if (existing->Equals(*child)) return;
  }
  into->push_back(std::move(child));
}

/// Views `child` as a PATH fragment: returns its regex plus the stream
/// inputs that feed it. A PATH child contributes (regex, children); any
/// other single-label producer contributes (Label(l), itself).
bool ChildAsPathFragment(const LogicalOp& child, Regex* regex,
                         std::vector<LogicalPlan>* inputs) {
  if (child.kind == LogicalOpKind::kPath) {
    *regex = child.regex;
    for (const auto& c : child.children) {
      AddUniqueChild(inputs, c->Clone());
    }
    return true;
  }
  const LabelId l = child.OutputLabel();
  if (l == kInvalidLabel) return false;
  *regex = Regex::Label(l);
  AddUniqueChild(inputs, child.Clone());
  return true;
}

}  // namespace

LogicalPlan TryPushFilterBelowWScan(const LogicalOp& plan) {
  if (plan.kind != LogicalOpKind::kFilter || plan.children.size() != 1) {
    return nullptr;
  }
  const LogicalOp& child = *plan.children[0];
  if (child.kind != LogicalOpKind::kWScan) return nullptr;
  // sigma(W(S)) -> W'(S) where W' is a filtered scan. We represent the
  // pushed-down form as WSCAN below FILTER swapped: FILTER is absorbed into
  // a filtered scan by keeping FILTER directly above but marking the scan;
  // since both orders are semantically identical, the rewrite materializes
  // the commuted tree FILTER<->WSCAN is a no-op structurally. We therefore
  // express push-down as: WSCAN stays the leaf and the rule does not apply.
  return nullptr;
}

LogicalPlan TryPullFilterAboveWScan(const LogicalOp& plan) {
  (void)plan;
  return nullptr;
}

LogicalPlan TryPushFilterBelowUnion(const LogicalOp& plan) {
  if (plan.kind != LogicalOpKind::kFilter || plan.children.size() != 1) {
    return nullptr;
  }
  const LogicalOp& u = *plan.children[0];
  if (u.kind != LogicalOpKind::kUnion) return nullptr;
  std::vector<LogicalPlan> new_children;
  for (const auto& c : u.children) {
    new_children.push_back(MakeFilter(plan.predicates, c->Clone()));
  }
  return MakeUnion(u.output_label, std::move(new_children));
}

LogicalPlan TrySplitPathAlternation(const LogicalOp& plan) {
  if (plan.kind != LogicalOpKind::kPath ||
      plan.regex.kind != RegexKind::kAlt) {
    return nullptr;
  }
  std::vector<LogicalPlan> paths;
  for (const Regex& alt : plan.regex.children) {
    std::vector<LogicalPlan> inputs = RouteChildren(plan, alt.Alphabet());
    if (inputs.empty()) return nullptr;  // alternative needs some stream
    paths.push_back(MakePath(plan.output_label, alt, std::move(inputs)));
  }
  return MakeUnion(plan.output_label, std::move(paths));
}

LogicalPlan TryMergePathAlternation(const LogicalOp& plan) {
  if (plan.kind != LogicalOpKind::kUnion || plan.children.size() < 2) {
    return nullptr;
  }
  std::vector<Regex> alts;
  std::vector<LogicalPlan> inputs;
  for (const auto& c : plan.children) {
    if (c->kind != LogicalOpKind::kPath) return nullptr;
    if (c->output_label != plan.output_label &&
        plan.output_label != kInvalidLabel) {
      // Relabeling union: the merged PATH can still emit the union label.
    }
    alts.push_back(c->regex);
    for (const auto& in : c->children) {
      AddUniqueChild(&inputs, in->Clone());
    }
  }
  const LabelId label = plan.output_label != kInvalidLabel
                            ? plan.output_label
                            : plan.children[0]->output_label;
  return MakePath(label, Regex::Alt(std::move(alts)), std::move(inputs));
}

LogicalPlan TrySplitPathConcat(const LogicalOp& plan, Vocabulary* vocab) {
  if (plan.kind != LogicalOpKind::kPath ||
      plan.regex.kind != RegexKind::kConcat ||
      plan.regex.children.size() < 2) {
    return nullptr;
  }
  // Split into head . tail.
  Regex head = plan.regex.children[0];
  Regex tail;
  {
    std::vector<Regex> rest(plan.regex.children.begin() + 1,
                            plan.regex.children.end());
    tail = Regex::Concat(std::move(rest));
  }
  if (AcceptsEmpty(head) || AcceptsEmpty(tail)) return nullptr;

  auto fresh = [&](const Regex& r) -> Result<LabelId> {
    return vocab->InternDerivedLabel("__seg_" + SerializeRegex(r));
  };
  auto head_label = fresh(head);
  auto tail_label = fresh(tail);
  if (!head_label.ok() || !tail_label.ok()) return nullptr;

  // A sub-regex that is a bare label needs no PATH: route the child stream
  // directly into the PATTERN.
  auto segment = [&](const Regex& r, LabelId seg_label) -> LogicalPlan {
    std::vector<LogicalPlan> inputs = RouteChildren(plan, r.Alphabet());
    if (inputs.empty()) return nullptr;
    if (r.kind == RegexKind::kLabel && inputs.size() == 1) {
      return std::move(inputs[0]);
    }
    return MakePath(seg_label, r, std::move(inputs));
  };
  LogicalPlan left = segment(head, *head_label);
  LogicalPlan right = segment(tail, *tail_label);
  if (left == nullptr || right == nullptr) return nullptr;

  std::vector<LogicalPlan> children;
  children.push_back(std::move(left));
  children.push_back(std::move(right));
  return MakePattern(plan.output_label, {{"x0", "x1"}, {"x1", "x2"}}, "x0",
                     "x2", std::move(children));
}

LogicalPlan TryFusePatternChain(const LogicalOp& plan) {
  if (plan.kind != LogicalOpKind::kPattern || plan.children.empty()) {
    return nullptr;
  }
  // The children must form a linear chain: (x0,x1), (x1,x2), ..., and the
  // output endpoints must be the chain's first and last variables.
  const std::size_t n = plan.child_vars.size();
  std::set<std::string> seen;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& [s, t] = plan.child_vars[i];
    if (s == t) return nullptr;
    if (i + 1 < n && t != plan.child_vars[i + 1].first) return nullptr;
    if (!seen.insert(s).second) return nullptr;  // variable reused
  }
  if (!seen.insert(plan.child_vars.back().second).second) return nullptr;
  if (plan.out_src_var != plan.child_vars.front().first ||
      plan.out_trg_var != plan.child_vars.back().second) {
    return nullptr;
  }

  std::vector<Regex> parts;
  std::vector<LogicalPlan> inputs;
  for (const auto& c : plan.children) {
    Regex part;
    if (!ChildAsPathFragment(*c, &part, &inputs)) return nullptr;
    parts.push_back(std::move(part));
  }
  return MakePath(plan.output_label, Regex::Concat(std::move(parts)),
                  std::move(inputs));
}

LogicalPlan TryFuseClosureOverProducer(const LogicalOp& plan) {
  if (plan.kind != LogicalOpKind::kPath || plan.children.size() != 1) {
    return nullptr;
  }
  const Regex& r = plan.regex;
  if ((r.kind != RegexKind::kPlus && r.kind != RegexKind::kStar) ||
      r.children[0].kind != RegexKind::kLabel) {
    return nullptr;
  }
  const LabelId closed = r.children[0].label;
  const LogicalOp* producer = plan.children[0].get();
  if (producer->OutputLabel() != closed) return nullptr;

  // If the producer is a PATTERN chain, fuse it into a PATH first.
  LogicalPlan fused_producer;
  if (producer->kind == LogicalOpKind::kPattern) {
    fused_producer = TryFusePatternChain(*producer);
    if (fused_producer == nullptr) return nullptr;
    producer = fused_producer.get();
  }
  if (producer->kind != LogicalOpKind::kPath) return nullptr;

  Regex inner = producer->regex;
  Regex closure = r.kind == RegexKind::kPlus ? Regex::Plus(std::move(inner))
                                             : Regex::Star(std::move(inner));
  std::vector<LogicalPlan> inputs;
  for (const auto& c : producer->children) {
    AddUniqueChild(&inputs, c->Clone());
  }
  return MakePath(plan.output_label, std::move(closure), std::move(inputs));
}

namespace {

using RewriteYield = std::function<void(LogicalPlan)>;

void YieldRootRewrites(const LogicalOp& node, Vocabulary* vocab,
                       const RewriteYield& yield) {
  if (auto p = TryPushFilterBelowUnion(node)) yield(std::move(p));
  if (auto p = TrySplitPathAlternation(node)) yield(std::move(p));
  if (auto p = TryMergePathAlternation(node)) yield(std::move(p));
  if (auto p = TrySplitPathConcat(node, vocab)) yield(std::move(p));
  if (auto p = TryFusePatternChain(node)) yield(std::move(p));
  if (auto p = TryFuseClosureOverProducer(node)) yield(std::move(p));
}

void YieldAllRewrites(const LogicalOp& node, Vocabulary* vocab,
                      const RewriteYield& yield) {
  YieldRootRewrites(node, vocab, yield);
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    YieldAllRewrites(*node.children[i], vocab, [&](LogicalPlan new_child) {
      LogicalPlan copy = node.Clone();
      copy->children[i] = std::move(new_child);
      yield(std::move(copy));
    });
  }
}

}  // namespace

std::vector<LogicalPlan> EnumeratePlans(const LogicalOp& root,
                                        Vocabulary* vocab,
                                        std::size_t limit) {
  std::vector<LogicalPlan> plans;
  plans.push_back(root.Clone());
  std::size_t next = 0;
  while (next < plans.size() && plans.size() < limit) {
    const LogicalOp& current = *plans[next++];
    YieldAllRewrites(current, vocab, [&](LogicalPlan candidate) {
      if (plans.size() >= limit) return;
      for (const auto& existing : plans) {
        if (existing->Equals(*candidate)) return;
      }
      plans.push_back(std::move(candidate));
    });
  }
  return plans;
}

}  // namespace sgq

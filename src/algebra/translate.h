// Canonical SGQ -> SGA translation (paper Algorithm SGQParser, §5.2).
//
// Processes the predicates of a Regular Query in dependency order and emits
// the canonical SGA expression: each EDB label becomes a WSCAN, each
// transitive-closure atom a PATH, each rule a PATTERN, and multiple rules
// with the same head a UNION. Star closures are first normalized away
// (query/normalize.h) so that every PATH carries a plus-closure.

#ifndef SGQ_ALGEBRA_TRANSLATE_H_
#define SGQ_ALGEBRA_TRANSLATE_H_

#include <vector>

#include "algebra/logical_plan.h"
#include "query/rq.h"

namespace sgq {

/// \brief Admission predicate of a plan: the set of raw stream labels its
/// source layer can admit (runtime/query_index.h keys its posting lists on
/// exactly this). Extracted at compile time from the plan's WSCAN leaves —
/// a plan only ever sees stream elements through its scans, so an edge
/// whose label is outside this set cannot affect the plan's output.
struct AdmissionPredicate {
  /// True when some source admits *every* label (a wildcard WSCAN,
  /// input_label == kInvalidLabel): the plan belongs in the query index's
  /// always-on bucket and `labels` lists only its label-constrained scans.
  bool wildcard = false;
  /// Labels admitted by label-constrained scans (sorted, deduplicated).
  std::vector<LabelId> labels;
};

/// \brief Translates an SGQ into its canonical logical SGA plan
/// (Theorem 1: such a plan exists for every SGQ).
Result<LogicalPlan> TranslateToCanonicalPlan(const StreamingGraphQuery& query,
                                             const Vocabulary& vocab);

/// \brief Canonical structural signature of a (sub)plan: equal signatures
/// imply the two subplans produce the same output stream for every input
/// stream. The runtime keys shared WindowStore partitions on it, and the
/// multi-query Engine dedupes whole operator subtrees across registered
/// queries by it (core/engine.h). FILTER conjuncts are order-normalized (a
/// conjunction commutes) and PATTERN variables are alpha-renamed by first
/// occurrence (the join depends on their equality structure, not their
/// spelling); UNION children are not reordered (emission order matters for
/// shared state).
std::string PlanSignature(const LogicalOp& plan);

/// \brief Extracts `plan`'s admission predicate (see AdmissionPredicate).
AdmissionPredicate PlanAdmission(const LogicalOp& plan);

}  // namespace sgq

#endif  // SGQ_ALGEBRA_TRANSLATE_H_

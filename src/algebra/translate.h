// Canonical SGQ -> SGA translation (paper Algorithm SGQParser, §5.2).
//
// Processes the predicates of a Regular Query in dependency order and emits
// the canonical SGA expression: each EDB label becomes a WSCAN, each
// transitive-closure atom a PATH, each rule a PATTERN, and multiple rules
// with the same head a UNION. Star closures are first normalized away
// (query/normalize.h) so that every PATH carries a plus-closure.

#ifndef SGQ_ALGEBRA_TRANSLATE_H_
#define SGQ_ALGEBRA_TRANSLATE_H_

#include "algebra/logical_plan.h"
#include "query/rq.h"

namespace sgq {

/// \brief Translates an SGQ into its canonical logical SGA plan
/// (Theorem 1: such a plan exists for every SGQ).
Result<LogicalPlan> TranslateToCanonicalPlan(const StreamingGraphQuery& query,
                                             const Vocabulary& vocab);

/// \brief Canonical structural signature of a (sub)plan: equal signatures
/// imply the two subplans produce the same output stream for every input
/// stream. The runtime keys shared WindowStore partitions on it, and the
/// multi-query Engine dedupes whole operator subtrees across registered
/// queries by it (core/engine.h). FILTER conjuncts are order-normalized (a
/// conjunction commutes) and PATTERN variables are alpha-renamed by first
/// occurrence (the join depends on their equality structure, not their
/// spelling); UNION children are not reordered (emission order matters for
/// shared state).
std::string PlanSignature(const LogicalOp& plan);

}  // namespace sgq

#endif  // SGQ_ALGEBRA_TRANSLATE_H_

// Figure 13: throughput and tail latency of Q2 = a.b* under the canonical
// SGA plan (UNION of PATTERN over PATH[b+] and the zero-step rename) and
// the fused single-PATH plan P1, on SO and SNB (§7.4).

#include "bench_plans.h"

namespace {

std::vector<sgq::bench::NamedPlan> SoPlans(sgq::Vocabulary* vocab,
                                           sgq::WindowSpec w) {
  return sgq::Q2Plans(vocab, "a2q", "c2q", w);
}
std::vector<sgq::bench::NamedPlan> SnbPlans(sgq::Vocabulary* vocab,
                                            sgq::WindowSpec w) {
  return sgq::Q2Plans(vocab, "likes", "replyOf", w);
}

}  // namespace

int main() {
  sgq::bench::RunPlanBench("Figure 13 (Q2 plan space)", SoPlans, SnbPlans);
  return 0;
}

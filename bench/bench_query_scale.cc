// Standing-query-population scaling (runtime/query_index.h, DESIGN.md
// §3.1): per-edge dispatch cost as a function of the number K of
// registered queries, with the label-discrimination query index on and
// off.
//
// The workload is K single-label queries over a Zipf-label stream
// (workload/generators.h GenerateZipfLabelStream): each arriving edge
// matches exactly one query's admission label, so the *useful* work per
// edge is O(1) in K. What separates the two dispatch modes is everything
// around that useful work — the legacy path broadcasts time-advance and
// purge phases to all O(K) operators per distinct timestamp / slide
// boundary, while the indexed path touches only the operators its
// postings and touched-cone say can react. ops_touched_per_edge makes
// the difference a first-class, near-deterministic metric.
//
// Output: one JSON object per line on stdout —
//   {"bench":"query_scale","queries":K,"workers":N,"batch":B,
//    "index":0|1,"labels":L,"edges":E,"elapsed_seconds":S,
//    "tuples_per_sec":T,"results_total":R,"ops":O,"state_bytes":M,
//    "ops_touched_per_edge":F,"index_skipped_dispatches":D}
// ("edges" is edges *admitted by some query*: at K=16 over 1024 labels
// the cold-label tail matches nothing, so edges < the stream length.)
// A human summary goes to stderr. Failure conditions:
//  - per-query result counts must not depend on the index flag (the
//    index prunes dispatch, never semantics);
//  - legacy-only: index_skipped_dispatches must be 0 with the index off;
//  - indexed ops_touched_per_edge must stay O(matching operators): the
//    K=1024 fanout may not exceed 4x the K=16 fanout (+2 absolute
//    slack for boundary-phase amortization over the shared stream);
//  - indexed throughput at K=1024 must stay within 3x of K=16 (the
//    population is 64x larger; near-flat per-edge cost is the point of
//    the index).

#include <vector>

#include "bench_common.h"

int main() {
  using namespace sgq;

  // One stream shared by every configuration: 1024 Zipf-distributed
  // labels so the K=1024 population has a label per query, dense hours
  // (50 edges/hour) so per-distinct-timestamp broadcast cost is
  // amortized the way a real feed would amortize it.
  Vocabulary vocab;
  ZipfStreamOptions zipf;
  zipf.num_labels = 1024;
  zipf.num_vertices = bench::Scaled(2000);
  zipf.num_edges = bench::Scaled(60000);
  zipf.skew = 1.0;
  zipf.edges_per_hour = 50.0;
  auto stream = GenerateZipfLabelStream(zipf, &vocab);
  bench::CheckOk(stream.status(), "stream");

  const std::size_t kBatch = 256;

  int failures = 0;
  for (std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    // Throughput / fanout of the indexed K=16 run, the scaling yardstick.
    double indexed_tput_16 = 0;
    double indexed_fanout_16 = 0;
    for (std::size_t num_queries : {std::size_t{16}, std::size_t{128},
                                    std::size_t{1024}}) {
      std::vector<StreamingGraphQuery> queries;
      queries.reserve(num_queries);
      for (std::size_t q = 0; q < num_queries; ++q) {
        const std::string body =
            "Answer(x,y) <- l" + std::to_string(q) + "(x,y)";
        auto query = MakeQuery(body, bench::PaperWindow(), &vocab);
        bench::CheckOk(query.status(), body.c_str());
        queries.push_back(std::move(*query));
      }
      std::fprintf(stderr, "-- K=%zu workers=%zu --\n", num_queries,
                   workers);

      std::vector<std::size_t> legacy_counts;
      for (const bool index : {false, true}) {
        EngineOptions options;
        options.batch_size = kBatch;
        options.num_workers = workers;
        options.use_query_index = index;
        auto metrics = RunMultiSga(
            *stream, queries, vocab, options,
            "K=" + std::to_string(num_queries) +
                (index ? "/indexed" : "/legacy"));
        bench::CheckOk(metrics.status(), "run");

        const RunMetrics& t = metrics->totals;
        const double fanout = t.OpsTouchedPerEdge();
        if (!index) {
          legacy_counts = metrics->per_query_results;
          if (t.index_skipped_dispatches != 0) {
            std::fprintf(stderr,
                         "index off but %zu dispatches were skipped\n",
                         t.index_skipped_dispatches);
            ++failures;
          }
        } else {
          // The index prunes dispatch, never semantics: the pruned
          // operators are exactly those guaranteed no-op, so per-query
          // results are identical, not just statistically close.
          for (std::size_t q = 0; q < metrics->per_query_results.size();
               ++q) {
            if (metrics->per_query_results[q] != legacy_counts[q]) {
              std::fprintf(stderr,
                           "query %zu: %zu results indexed vs %zu legacy "
                           "(K=%zu, workers=%zu)\n",
                           q, metrics->per_query_results[q],
                           legacy_counts[q], num_queries, workers);
              ++failures;
            }
          }
          if (num_queries == 16) {
            indexed_tput_16 = t.Throughput();
            indexed_fanout_16 = fanout;
          } else if (num_queries == 1024) {
            if (indexed_fanout_16 > 0 &&
                fanout > indexed_fanout_16 * 4.0 + 2.0) {
              std::fprintf(stderr,
                           "indexed fanout grew O(K): %.2f ops/edge at "
                           "K=1024 vs %.2f at K=16 (workers=%zu)\n",
                           fanout, indexed_fanout_16, workers);
              ++failures;
            }
            if (indexed_tput_16 > 0 &&
                t.Throughput() < indexed_tput_16 / 3.0) {
              std::fprintf(stderr,
                           "indexed throughput collapsed with K: %.0f "
                           "tuples/s at K=1024 vs %.0f at K=16 "
                           "(workers=%zu)\n",
                           t.Throughput(), indexed_tput_16, workers);
              ++failures;
            }
          }
        }
        std::printf(
            "{\"bench\":\"query_scale\",\"queries\":%zu,\"workers\":%zu,"
            "\"cpus\":%zu,\"batch\":%zu,\"index\":%d,\"labels\":%zu,"
            "\"edges\":%zu,"
            "\"elapsed_seconds\":%.6f,\"tuples_per_sec\":%.1f,"
            "\"results_total\":%zu,\"ops\":%zu,\"state_bytes\":%zu,"
            "\"ops_touched_per_edge\":%.3f,"
            "\"index_skipped_dispatches\":%zu%s}\n",
            num_queries, workers, bench::Cpus(), kBatch, index ? 1 : 0,
            zipf.num_labels,
            t.edges_processed, t.elapsed_seconds, t.Throughput(),
            t.results_emitted, metrics->num_operators, t.state_bytes,
            fanout, t.index_skipped_dispatches,
            bench::CheckpointJson(t).c_str());
        std::fprintf(stderr,
                     "  %-7s %10.0f tuples/s  %6.2f ops/edge  "
                     "%9zu skipped  %6zu results\n",
                     index ? "indexed" : "legacy", t.Throughput(), fanout,
                     t.index_skipped_dispatches, t.results_emitted);
      }
    }
  }
  return failures == 0 ? 0 : 1;
}

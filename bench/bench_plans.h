// Execution harness for the §7.4 plan-space micro-benchmarks
// (Figures 12, 13, 14). The plans themselves live in the library
// (workload/plan_gallery.h) so tests can verify their equivalence.

#ifndef SGQ_BENCH_BENCH_PLANS_H_
#define SGQ_BENCH_BENCH_PLANS_H_

#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "workload/plan_gallery.h"

namespace sgq {
namespace bench {

using sgq::NamedPlan;

/// \brief Runs every named plan on both datasets and prints the rows.
inline void RunPlanBench(
    const char* figure,
    std::vector<NamedPlan> (*make_so)(Vocabulary*, WindowSpec),
    std::vector<NamedPlan> (*make_snb)(Vocabulary*, WindowSpec)) {
  struct Dataset {
    const char* name;
    Result<InputStream> (*stream)(Vocabulary*);
    std::vector<NamedPlan> (*plans)(Vocabulary*, WindowSpec);
  };
  const Dataset datasets[] = {{"SO", &SoStream, make_so},
                              {"SNB", &SnbStream, make_snb}};
  for (const Dataset& ds : datasets) {
    std::printf("\n=== %s — %s ===\n", figure, ds.name);
    PrintMetricsHeader("");
    Vocabulary vocab;
    auto stream = ds.stream(&vocab);
    CheckOk(stream.status(), "stream");
    for (const auto& [name, plan] : ds.plans(&vocab, PaperWindow())) {
      auto metrics = RunSgaPlan(*stream, *plan, vocab, EngineOptions{},
                                name);
      CheckOk(metrics.status(), name.c_str());
      PrintMetricsRow(*metrics);
    }
  }
}

}  // namespace bench
}  // namespace sgq

#endif  // SGQ_BENCH_BENCH_PLANS_H_

// Figure 10a: sensitivity of the SGA query processor to the window size
// T on the SO stream — 10, 20, 30, 40, 50 days with slide = 1 day (§7.3).
//
// Expected shape (paper): throughput decreases and tail latency increases
// monotonically with the window size (more live state per slide).

#include "bench_common.h"

int main() {
  using namespace sgq;
  std::printf("=== Figure 10a — SO, window-size sweep (slide = 1d) ===\n");
  for (const BenchQuery& bq : SoQuerySet()) {
    PrintMetricsHeader("\n-- " + bq.name + " --");
    for (Timestamp days : {10, 20, 30, 40, 50}) {
      Vocabulary vocab;
      auto stream = bench::SoStream(&vocab);
      bench::CheckOk(stream.status(), "stream");
      auto query =
          MakeQuery(bq.text, WindowSpec(days * kDay, kDay), &vocab);
      bench::CheckOk(query.status(), bq.name.c_str());
      auto metrics =
          RunSga(*stream, *query, vocab, EngineOptions{},
                 bq.name + "/W=" + std::to_string(days) + "d");
      bench::CheckOk(metrics.status(), "run");
      PrintMetricsRow(*metrics);
    }
  }
  return 0;
}

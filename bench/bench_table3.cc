// Table 3: the impact of the S-PATH physical operator (direct approach,
// §6.2.4) versus the Δ-tree PATH of [57] (negative-tuple approach) on the
// end-to-end performance of queries Q1-Q7; |W| = 30 days, slide = 1 day.
//
// Expected shape (paper): S-PATH improves throughput on the cyclic SO
// graph (many alternative paths -> expensive delete/re-derive for the
// negative-tuple variant), while on SNB — where replyOf paths are unique —
// the two are close.

#include "bench_common.h"

namespace sgq {
namespace {

void RunDataset(const char* dataset_name,
                Result<InputStream> (*make_stream)(Vocabulary*),
                std::vector<BenchQuery> (*make_queries)()) {
  std::printf("\n=== Table 3 — %s: S-PATH vs Δ-tree PATH ===\n",
              dataset_name);
  PrintMetricsHeader("");
  for (const BenchQuery& bq : make_queries()) {
    Vocabulary vocab;
    auto stream = make_stream(&vocab);
    bench::CheckOk(stream.status(), "stream");
    auto query = MakeQuery(bq.text, bench::PaperWindow(), &vocab);
    bench::CheckOk(query.status(), bq.name.c_str());

    EngineOptions delta;
    delta.path_impl = PathImpl::kDeltaPath;
    auto base = RunSga(*stream, *query, vocab, delta,
                       bq.name + "/delta-tree");
    bench::CheckOk(base.status(), "delta run");

    EngineOptions spath;
    spath.path_impl = PathImpl::kSPath;
    auto fast =
        RunSga(*stream, *query, vocab, spath, bq.name + "/S-PATH");
    bench::CheckOk(fast.status(), "spath run");

    PrintMetricsRow(*base);
    PrintMetricsRow(*fast);
    const double tput_gain =
        base->Throughput() > 0
            ? (fast->Throughput() / base->Throughput() - 1.0) * 100.0
            : 0.0;
    std::printf("%-24s %+13.1f%%\n",
                (bq.name + "/improvement").c_str(), tput_gain);
  }
}

}  // namespace
}  // namespace sgq

int main() {
  sgq::RunDataset("StackOverflow-like (SO)", sgq::bench::SoStream,
                  sgq::SoQuerySet);
  sgq::RunDataset("LDBC-SNB-like (SNB)", sgq::bench::SnbStream,
                  sgq::SnbQuerySet);
  return 0;
}

// Shared configuration for the experiment binaries (one per paper
// table/figure; see DESIGN.md §8 for the experiment index).
//
// Streams are laptop-scale versions of the paper's datasets (see DESIGN.md
// substitutions): the absolute throughput numbers are lower than the
// paper's 32-core server, but the comparisons (SGA vs DD, S-PATH vs
// Δ-tree, plan space) preserve their shape. Set SGQ_BENCH_SCALE to grow or
// shrink every stream (default 1.0).

#ifndef SGQ_BENCH_BENCH_COMMON_H_
#define SGQ_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "sgq/sgq.h"

namespace sgq {
namespace bench {

/// \brief Logical CPUs of the recording box — stamped into every JSON row
/// so scripts/bench_diff.py can tell apples-to-apples parallel-speedup
/// comparisons from cross-machine ones (a 4-core baseline's parsers=4
/// speedup is meaningless on a 2-core runner).
inline std::size_t Cpus() {
  const unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? n : 1;
}

inline double Scale() {
  const char* env = std::getenv("SGQ_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double s = std::atof(env);
  return s > 0 ? s : 1.0;
}

inline std::size_t Scaled(std::size_t n) {
  return static_cast<std::size_t>(static_cast<double>(n) * Scale());
}

/// \brief The SO-like stream used by the experiments (dense, cyclic).
/// ~150 simulated days, i.e. ~5 sliding 30-day windows: expirations matter,
/// as they do in the paper's 8-year SO trace.
inline Result<InputStream> SoStream(Vocabulary* vocab) {
  SoOptions opt;
  // Vertex/edge ratio mirrors the real SO trace (≈0.3 edges per user per
  // 30-day window): hubs make the graph cyclic, but reachability sets stay
  // bounded, as they do at the paper's scale.
  opt.num_vertices = Scaled(2500);
  opt.num_edges = Scaled(9000);
  opt.edges_per_hour = 2.5;
  return GenerateSoStream(opt, vocab);
}

/// \brief The SNB-like stream (forest-shaped replyOf, community knows);
/// ~125 simulated days (~4 windows).
inline Result<InputStream> SnbStream(Vocabulary* vocab) {
  SnbOptions opt;
  opt.num_persons = Scaled(900);
  opt.num_communities = 45;
  opt.num_events = Scaled(12000);
  opt.edges_per_hour = 4.0;
  return GenerateSnbStream(opt, vocab);
}

/// \brief The paper's default window: |W| = 30 days, slide = 1 day.
inline WindowSpec PaperWindow() { return WindowSpec(30 * kDay, kDay); }

/// \brief Trailing checkpoint fields for the per-line JSON emitters,
/// always present so rows parse uniformly: both are 0 on runs that never
/// checkpointed, and report the foreground serialization stall plus the
/// encoded snapshot size otherwise (common/metrics.h).
inline std::string CheckpointJson(const RunMetrics& m) {
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                ",\"checkpoint_write_ns\":%llu,\"checkpoint_bytes\":%llu",
                static_cast<unsigned long long>(m.checkpoint_write_ns),
                static_cast<unsigned long long>(m.checkpoint_bytes));
  return std::string(buf);
}

/// \brief Aborts the binary on a non-OK status (benchmark setup only).
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace bench
}  // namespace sgq

#endif  // SGQ_BENCH_BENCH_COMMON_H_

// Figure 10b: sensitivity of the SGA query processor to the slide
// interval beta on the SO stream — 3h, 6h, 12h, 1d, 2d, 4d with
// |W| = 30 days (§7.3).
//
// Expected shape (paper): throughput is *stable* across slides — SGA
// operators are tuple-at-a-time and do not batch — while the per-slide
// tail latency grows with the slide interval (each slide simply contains
// more arrivals). Contrast with Figure 11 (DD improves with batching).

#include "bench_common.h"

int main() {
  using namespace sgq;
  std::printf("=== Figure 10b — SO, slide sweep (|W| = 30d) ===\n");
  const std::pair<const char*, Timestamp> slides[] = {
      {"3h", 3},  {"6h", 6},   {"12h", 12},
      {"1d", 24}, {"2d", 48},  {"4d", 96}};
  for (const BenchQuery& bq : SoQuerySet()) {
    PrintMetricsHeader("\n-- " + bq.name + " --");
    for (const auto& [label, slide] : slides) {
      Vocabulary vocab;
      auto stream = bench::SoStream(&vocab);
      bench::CheckOk(stream.status(), "stream");
      auto query =
          MakeQuery(bq.text, WindowSpec(30 * kDay, slide), &vocab);
      bench::CheckOk(query.status(), bq.name.c_str());
      auto metrics =
          RunSga(*stream, *query, vocab, EngineOptions{},
                 bq.name + "/slide=" + label);
      bench::CheckOk(metrics.status(), "run");
      PrintMetricsRow(*metrics);
    }
  }
  return 0;
}

// Async ingest pipeline: throughput of parse-during-run execution with
// the double-buffered ingest stage on and off (DESIGN.md §6), plus the
// parse-stage matrix — stream format {csv, binary} × parser threads
// {1, 2, 4} behind the order-restoring merge.
//
// The workload is deliberately *ingest-bound*: the SO-like stream is
// rendered once (CSV text and SGQB binary of the same stream), and every
// run parses those bytes as part of the measured region
// (workload/harness.cc RunSgaText). Synchronous runs parse inline on the
// execution thread; async runs parse on the dedicated ingest thread,
// overlapped with execution, so the async/sync ratio isolates exactly the
// pipeline win. Sharded runs split the parse itself over N parser
// threads; parse_tuples_per_sec (elements / slowest parser's busy time)
// is what that stage scales, independent of how fast execution can drain
// it. Result counts must match pairwise at equal (workload, workers,
// batch) — format and parser count change where and how parsing happens,
// never what executes.
//
// Output: one JSON object per line on stdout —
//   {"bench":"ingest_pipeline","workload":...,"workers":N,"cpus":C,
//    "batch":B,"async":0|1,"pin":0|1,"format":"csv"|"binary","parsers":P,
//    "edges":E,"elapsed_seconds":S,"tuples_per_sec":T,"results":R,
//    "speedup_async_vs_sync":X,"ingest_stall_ns":I,"exec_stall_ns":J,
//    "parse_tuples_per_sec":PT,"merge_stall_ns":M,
//    "parser_stall_ns":[...],
//    "ops_touched_per_edge":F,"index_skipped_dispatches":D}
// File-mode rows (the bounded-memory chunk feeder, model/
// file_chunk_source.h) carry two extra fields — "file_mode":"buffered"|
// "mmap" and "readahead_stall_ns":N — and report
// "speedup_vs_buffered" (same format × parsers, mmap over buffered)
// in place of "speedup_async_vs_sync".
// A human summary goes to stderr. exec_stall_ns >> ingest_stall_ns
// confirms the run is ingest-bound (execution starved for parsed input).

#include "bench_common.h"

#include <cstdio>
#include <cstdlib>

#include <unistd.h>

namespace {

void PrintRowTail(const sgq::RunMetrics& m) {
  std::string stalls = "[";
  for (std::size_t p = 0; p < m.parser_stall_ns.size(); ++p) {
    if (p > 0) stalls += ",";
    stalls += std::to_string(m.parser_stall_ns[p]);
  }
  stalls += "]";
  std::printf(
      "\"edges\":%zu,\"elapsed_seconds\":%.6f,"
      "\"tuples_per_sec\":%.1f,\"results\":%zu,"
      "\"ingest_stall_ns\":%llu,\"exec_stall_ns\":%llu,"
      "\"parse_tuples_per_sec\":%.1f,\"merge_stall_ns\":%llu,"
      "\"parser_stall_ns\":%s,"
      "\"ops_touched_per_edge\":%.3f,\"index_skipped_dispatches\":%zu"
      "%s}\n",
      m.edges_processed, m.elapsed_seconds, m.Throughput(),
      m.results_emitted,
      static_cast<unsigned long long>(m.ingest_stall_ns),
      static_cast<unsigned long long>(m.exec_stall_ns),
      m.ParseTuplesPerSec(),
      static_cast<unsigned long long>(m.merge_stall_ns), stalls.c_str(),
      m.OpsTouchedPerEdge(), m.index_skipped_dispatches,
      sgq::bench::CheckpointJson(m).c_str());
}

void PrintRow(const sgq::RunMetrics& m, const char* workload,
              std::size_t workers, std::size_t batch, bool async, bool pin,
              const char* format, std::size_t parsers, double speedup) {
  std::printf(
      "{\"bench\":\"ingest_pipeline\",\"workload\":\"%s\","
      "\"workers\":%zu,\"cpus\":%zu,\"batch\":%zu,\"async\":%d,\"pin\":%d,"
      "\"format\":\"%s\",\"parsers\":%zu,"
      "\"speedup_async_vs_sync\":%.3f,",
      workload, workers, sgq::bench::Cpus(), batch, async ? 1 : 0,
      pin ? 1 : 0, format, parsers, speedup);
  PrintRowTail(m);
}

void PrintFileRow(const sgq::RunMetrics& m, const char* workload,
                  const char* file_mode, const char* format,
                  std::size_t parsers, std::size_t batch, double speedup) {
  std::printf(
      "{\"bench\":\"ingest_pipeline\",\"workload\":\"%s\","
      "\"workers\":1,\"cpus\":%zu,\"batch\":%zu,\"async\":1,\"pin\":0,"
      "\"format\":\"%s\",\"parsers\":%zu,\"file_mode\":\"%s\","
      "\"speedup_vs_buffered\":%.3f,\"readahead_stall_ns\":%llu,",
      workload, sgq::bench::Cpus(), batch, format, parsers, file_mode,
      speedup, static_cast<unsigned long long>(m.readahead_stall_ns));
  PrintRowTail(m);
}

}  // namespace

int main() {
  using namespace sgq;

  struct Workload {
    const char* name;
    const char* query;
  };
  // The overlap win is min(parse, execute) / (parse + execute): it peaks
  // when the two stages are comparable and vanishes when either side
  // dominates. The first workload is the ingest-bound headline — every
  // parsed line is consumed by a scan+union+rename pass, so per-line
  // execute cost is on par with per-line parse cost. The second is
  // execution-heavier, showing the backpressure side (ingest_stall_ns
  // grows, the win shrinks toward the parse fraction).
  const Workload workloads[] = {
      {"scan-union",
       "Answer(x,y) <- a2q(x,y)\n"
       "Answer(x,y) <- c2q(x,y)\n"
       "Answer(x,y) <- c2a(x,y)"},
      {"pattern-2atom", "Answer(x,z) <- a2q(x,y), c2a(y,z)"},
  };
  const std::size_t kBatch = 1024;

  // Render the stream once, in both encodings of the identical element
  // sequence; all runs parse the same bytes. Denser than the shared
  // SoStream (8x the edges at the same arrival window): the parse has to
  // be a substantial fraction of the run for the overlap to be measurable
  // above pipeline startup cost, at CI scale too.
  std::string csv, binary;
  {
    Vocabulary vocab;
    SoOptions opt;
    // Floor below the SGQ_BENCH_SCALE knob: pipeline startup (thread
    // spawn, first-batch latency) is ~1ms, so the measured region must
    // stay tens of milliseconds even at the CI scale of 0.1.
    opt.num_vertices = std::max<std::size_t>(bench::Scaled(2500), 1500);
    opt.num_edges = std::max<std::size_t>(bench::Scaled(72000), 30000);
    opt.edges_per_hour = 20.0;
    auto stream = GenerateSoStream(opt, &vocab);
    bench::CheckOk(stream.status(), "stream");
    csv = FormatStreamCsv(*stream, vocab);
    auto encoded = FormatStreamBinary(*stream, vocab);
    bench::CheckOk(encoded.status(), "binary encode");
    binary = std::move(*encoded);
  }
  std::fprintf(stderr, "stream: %zu bytes of CSV, %zu bytes of SGQB\n",
               csv.size(), binary.size());

  int failures = 0;
  auto check_results = [&failures](std::size_t got, std::size_t want,
                                   const char* what) {
    if (want != static_cast<std::size_t>(-1) && got != want) {
      // Parse placement/format only move parsing around; at equal
      // workers/batch the executed element sequence is identical, so any
      // count difference is a correctness bug.
      std::fprintf(stderr,
                   "%s emitted %zu results, reference emitted %zu "
                   "(parse stage changed execution?)\n",
                   what, got, want);
      ++failures;
    }
  };

  for (const Workload& w : workloads) {
    std::fprintf(stderr, "-- %s --\n", w.name);
    for (std::size_t workers : {std::size_t{1}, std::size_t{2},
                                std::size_t{4}}) {
      double sync_tput = 0;
      std::size_t sync_results = static_cast<std::size_t>(-1);
      // pin=1 rides along on the async configuration only: affinity has
      // nothing to stabilize in a single-threaded synchronous run.
      for (int config = 0; config < 3; ++config) {
        const bool async = config >= 1;
        const bool pin = config == 2;
        if (pin && workers == 1) continue;  // no pool to pin
        Vocabulary vocab;
        auto query = MakeQuery(w.query, bench::PaperWindow(), &vocab);
        bench::CheckOk(query.status(), w.name);
        EngineOptions options;
        options.batch_size = kBatch;
        options.num_workers = workers;
        options.async_ingest = async;
        options.pin_workers = pin;
        auto metrics = RunSgaCsv(
            csv, *query, &vocab, options,
            std::string(w.name) + "/workers=" + std::to_string(workers) +
                (async ? "/async" : "/sync") + (pin ? "/pin" : ""));
        bench::CheckOk(metrics.status(), "run");

        const double tput = metrics->Throughput();
        if (!async) {
          sync_tput = tput;
          sync_results = metrics->results_emitted;
        } else {
          check_results(metrics->results_emitted, sync_results,
                        metrics->name.c_str());
        }
        const double speedup = sync_tput > 0 ? tput / sync_tput : 0;
        PrintRow(*metrics, w.name, workers, kBatch, async, pin, "csv", 1,
                 speedup);
        std::fprintf(stderr,
                     "  workers=%zu %-11s %10.0f tuples/s  (%.2fx vs "
                     "sync)  stalls: ingest %.1f ms, exec %.1f ms\n",
                     workers, async ? (pin ? "async+pin" : "async") : "sync",
                     tput, speedup, metrics->ingest_stall_ns / 1e6,
                     metrics->exec_stall_ns / 1e6);
      }
    }
  }

  // Sharded-parse matrix: format × parser count at workers=1 (execution
  // held constant and cheap, so the parse stage is the visible axis).
  // The single-threaded CSV sync run is the shared reference: the binary
  // × parsers=4 cell versus that reference is the headline speedup.
  const Workload& matrix_w = workloads[0];
  std::fprintf(stderr, "-- parse matrix (%s, workers=1) --\n",
               matrix_w.name);
  double csv_sync_parse_tput = 0;
  std::size_t matrix_results = static_cast<std::size_t>(-1);
  {
    Vocabulary vocab;
    auto query = MakeQuery(matrix_w.query, bench::PaperWindow(), &vocab);
    bench::CheckOk(query.status(), matrix_w.name);
    EngineOptions options;
    options.batch_size = kBatch;
    options.num_workers = 1;
    auto metrics = RunSgaCsv(csv, *query, &vocab, options,
                             "matrix/csv/sync");
    bench::CheckOk(metrics.status(), "run");
    csv_sync_parse_tput = metrics->ParseTuplesPerSec();
    matrix_results = metrics->results_emitted;
    std::fprintf(stderr,
                 "  csv    sync       parse %10.0f tuples/s  (reference)\n",
                 csv_sync_parse_tput);
  }
  for (const bool use_binary : {false, true}) {
    for (std::size_t parsers : {std::size_t{1}, std::size_t{2},
                                std::size_t{4}}) {
      Vocabulary vocab;
      auto query = MakeQuery(matrix_w.query, bench::PaperWindow(), &vocab);
      bench::CheckOk(query.status(), matrix_w.name);
      EngineOptions options;
      options.batch_size = kBatch;
      options.num_workers = 1;
      options.async_ingest = true;
      options.ingest_parsers = parsers;
      options.ingest_format =
          use_binary ? StreamFormat::kBinary : StreamFormat::kCsv;
      const char* format = use_binary ? "binary" : "csv";
      auto metrics = RunSgaText(
          use_binary ? binary : csv, *query, &vocab, options,
          std::string("matrix/") + format + "/parsers=" +
              std::to_string(parsers));
      bench::CheckOk(metrics.status(), "run");
      check_results(metrics->results_emitted, matrix_results,
                    metrics->name.c_str());
      const double parse_tput = metrics->ParseTuplesPerSec();
      const double parse_speedup =
          csv_sync_parse_tput > 0 ? parse_tput / csv_sync_parse_tput : 0;
      PrintRow(*metrics, matrix_w.name, 1, kBatch, /*async=*/true,
               /*pin=*/false, format, parsers, parse_speedup);
      std::fprintf(stderr,
                   "  %-6s parsers=%zu  parse %10.0f tuples/s  (%.2fx vs "
                   "csv sync)  merge stall %.1f ms\n",
                   format, parsers, parse_tput, parse_speedup,
                   metrics->merge_stall_ns / 1e6);
    }
  }

  // File-ingest matrix: the bounded-memory chunk feeder (buffered pread
  // vs mmap) against the same workload at workers=1. Both streams are
  // rendered to temp files once; every cell re-ingests the file through
  // RunSgaFile, so the measured region includes the feeder's I/O. The
  // acceptance bar is parse throughput: the windowed feeder must not be
  // slower than fully materializing the file first, and mmap should meet
  // or beat buffered pread (speedup_vs_buffered >= ~1 modulo noise).
  std::fprintf(stderr, "-- file ingest (%s, workers=1) --\n",
               matrix_w.name);
  const char* tmpdir = std::getenv("TMPDIR");
  if (tmpdir == nullptr || tmpdir[0] == '\0') tmpdir = "/tmp";
  const std::string stem = std::string(tmpdir) + "/sgq_bench_ingest_" +
                           std::to_string(static_cast<long>(getpid()));
  const std::string csv_path = stem + ".csv";
  const std::string bin_path = stem + ".sgqb";
  bench::CheckOk(WriteFileBytes(csv_path, csv), "write csv temp");
  bench::CheckOk(WriteFileBytes(bin_path, binary), "write binary temp");
  for (const bool use_binary : {false, true}) {
    const char* format = use_binary ? "binary" : "csv";
    const std::string& path = use_binary ? bin_path : csv_path;
    for (std::size_t parsers : {std::size_t{1}, std::size_t{4}}) {
      double buffered_tput = 0;
      for (const FileIngestMode mode :
           {FileIngestMode::kBuffered, FileIngestMode::kMmap}) {
        const bool mmapped = mode == FileIngestMode::kMmap;
        const char* mode_name = mmapped ? "mmap" : "buffered";
        Vocabulary vocab;
        auto query = MakeQuery(matrix_w.query, bench::PaperWindow(), &vocab);
        bench::CheckOk(query.status(), matrix_w.name);
        EngineOptions options;
        options.batch_size = kBatch;
        options.num_workers = 1;
        options.async_ingest = true;
        options.ingest_parsers = parsers;
        options.ingest_file_mode = mode;
        options.ingest_format =
            use_binary ? StreamFormat::kBinary : StreamFormat::kCsv;
        auto metrics = RunSgaFile(
            path, *query, &vocab, options,
            std::string("file/") + format + "/" + mode_name +
                "/parsers=" + std::to_string(parsers));
        bench::CheckOk(metrics.status(), "run");
        check_results(metrics->results_emitted, matrix_results,
                      metrics->name.c_str());
        // Speedup over end-to-end throughput, not ParseTuplesPerSec: the
        // binary parse busy time is microseconds at CI scale, so the
        // per-parser ratio is pure noise there, while the wall-clock
        // ratio is what the feeder actually changes.
        const double tput = metrics->Throughput();
        double speedup = 1.0;
        if (!mmapped) {
          buffered_tput = tput;
        } else if (buffered_tput > 0) {
          speedup = tput / buffered_tput;
        }
        PrintFileRow(*metrics, matrix_w.name, mode_name, format, parsers,
                     kBatch, speedup);
        std::fprintf(stderr,
                     "  %-6s %-8s parsers=%zu  %10.0f tuples/s  "
                     "parse %10.0f tuples/s  (%.2fx vs buffered)  "
                     "readahead stall %.1f ms\n",
                     format, mode_name, parsers, tput,
                     metrics->ParseTuplesPerSec(), speedup,
                     metrics->readahead_stall_ns / 1e6);
      }
    }
  }
  std::remove(csv_path.c_str());
  std::remove(bin_path.c_str());
  return failures == 0 ? 0 : 1;
}

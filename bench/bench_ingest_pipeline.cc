// Async ingest pipeline: throughput of parse-during-run execution with
// the double-buffered ingest stage on and off (DESIGN.md §6).
//
// The workload is deliberately *ingest-bound*: the SO-like stream is
// rendered to CSV once, and every run parses that text as part of the
// measured region (workload/harness.cc RunSgaCsv). Synchronous runs parse
// inline on the execution thread; async runs parse on the dedicated
// ingest thread, overlapped with execution, so the async/sync ratio
// isolates exactly the pipeline win. Result counts must match pairwise at
// equal (workload, workers, batch) — the pipeline changes where parsing
// happens, never what executes.
//
// Output: one JSON object per line on stdout —
//   {"bench":"ingest_pipeline","workload":...,"workers":N,"batch":B,
//    "async":0|1,"pin":0|1,"edges":E,"elapsed_seconds":S,
//    "tuples_per_sec":T,"results":R,"speedup_async_vs_sync":X,
//    "ingest_stall_ns":I,"exec_stall_ns":J}
// A human summary goes to stderr. exec_stall_ns >> ingest_stall_ns
// confirms the run is ingest-bound (execution starved for parsed input).

#include "bench_common.h"

int main() {
  using namespace sgq;

  struct Workload {
    const char* name;
    const char* query;
  };
  // The overlap win is min(parse, execute) / (parse + execute): it peaks
  // when the two stages are comparable and vanishes when either side
  // dominates. The first workload is the ingest-bound headline — every
  // parsed line is consumed by a scan+union+rename pass, so per-line
  // execute cost is on par with per-line parse cost. The second is
  // execution-heavier, showing the backpressure side (ingest_stall_ns
  // grows, the win shrinks toward the parse fraction).
  const Workload workloads[] = {
      {"scan-union",
       "Answer(x,y) <- a2q(x,y)\n"
       "Answer(x,y) <- c2q(x,y)\n"
       "Answer(x,y) <- c2a(x,y)"},
      {"pattern-2atom", "Answer(x,z) <- a2q(x,y), c2a(y,z)"},
  };
  const std::size_t kBatch = 1024;

  // Render the stream once; all runs parse the same text. Denser than the
  // shared SoStream (8x the edges at the same arrival window): the parse
  // has to be a substantial fraction of the run for the overlap to be
  // measurable above pipeline startup cost, at CI scale too.
  std::string csv;
  {
    Vocabulary vocab;
    SoOptions opt;
    // Floor below the SGQ_BENCH_SCALE knob: pipeline startup (thread
    // spawn, first-batch latency) is ~1ms, so the measured region must
    // stay tens of milliseconds even at the CI scale of 0.1.
    opt.num_vertices = std::max<std::size_t>(bench::Scaled(2500), 1500);
    opt.num_edges = std::max<std::size_t>(bench::Scaled(72000), 30000);
    opt.edges_per_hour = 20.0;
    auto stream = GenerateSoStream(opt, &vocab);
    bench::CheckOk(stream.status(), "stream");
    csv = FormatStreamCsv(*stream, vocab);
  }
  std::fprintf(stderr, "stream: %zu bytes of CSV\n", csv.size());

  int failures = 0;
  for (const Workload& w : workloads) {
    std::fprintf(stderr, "-- %s --\n", w.name);
    for (std::size_t workers : {std::size_t{1}, std::size_t{2},
                                std::size_t{4}}) {
      double sync_tput = 0;
      std::size_t sync_results = 0;
      // pin=1 rides along on the async configuration only: affinity has
      // nothing to stabilize in a single-threaded synchronous run.
      for (int config = 0; config < 3; ++config) {
        const bool async = config >= 1;
        const bool pin = config == 2;
        if (pin && workers == 1) continue;  // no pool to pin
        Vocabulary vocab;
        auto query = MakeQuery(w.query, bench::PaperWindow(), &vocab);
        bench::CheckOk(query.status(), w.name);
        EngineOptions options;
        options.batch_size = kBatch;
        options.num_workers = workers;
        options.async_ingest = async;
        options.pin_workers = pin;
        auto metrics = RunSgaCsv(
            csv, *query, &vocab, options,
            std::string(w.name) + "/workers=" + std::to_string(workers) +
                (async ? "/async" : "/sync") + (pin ? "/pin" : ""));
        bench::CheckOk(metrics.status(), "run");

        const double tput = metrics->Throughput();
        if (!async) {
          sync_tput = tput;
          sync_results = metrics->results_emitted;
        } else if (metrics->results_emitted != sync_results) {
          // The pipeline only moves parsing off the execution thread; at
          // equal workers/batch the executed element sequence is
          // identical, so any count difference is a correctness bug.
          std::fprintf(stderr,
                       "async workers=%zu emitted %zu results, sync "
                       "emitted %zu (pipeline changed execution?)\n",
                       workers, metrics->results_emitted, sync_results);
          ++failures;
        }
        const double speedup = sync_tput > 0 ? tput / sync_tput : 0;
        std::printf(
            "{\"bench\":\"ingest_pipeline\",\"workload\":\"%s\","
            "\"workers\":%zu,\"batch\":%zu,\"async\":%d,\"pin\":%d,"
            "\"edges\":%zu,\"elapsed_seconds\":%.6f,"
            "\"tuples_per_sec\":%.1f,\"results\":%zu,"
            "\"speedup_async_vs_sync\":%.3f,"
            "\"ingest_stall_ns\":%llu,\"exec_stall_ns\":%llu}\n",
            w.name, workers, kBatch, async ? 1 : 0, pin ? 1 : 0,
            metrics->edges_processed, metrics->elapsed_seconds, tput,
            metrics->results_emitted, speedup,
            static_cast<unsigned long long>(metrics->ingest_stall_ns),
            static_cast<unsigned long long>(metrics->exec_stall_ns));
        std::fprintf(stderr,
                     "  workers=%zu %-11s %10.0f tuples/s  (%.2fx vs "
                     "sync)  stalls: ingest %.1f ms, exec %.1f ms\n",
                     workers, async ? (pin ? "async+pin" : "async") : "sync",
                     tput, speedup, metrics->ingest_stall_ns / 1e6,
                     metrics->exec_stall_ns / 1e6);
      }
    }
  }
  return failures == 0 ? 0 : 1;
}

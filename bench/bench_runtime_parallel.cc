// Sharded multi-worker scaling: throughput of the SGA query processor as
// a function of ExecutorOptions::num_workers (DESIGN.md §2.4).
//
// Workloads are the window benchmark mix on the SO-like stream (dense and
// cyclic, so PATH traversal work dominates and parallelizes): a path
// closure, a two-atom join, and the mixed query. Every configuration runs
// with the same micro-batch size so the comparison isolates sharding.
//
// Output: one JSON object per line on stdout —
//   {"bench":"runtime_parallel","workload":...,"workers":N,"batch":B,
//    "edges":E,"elapsed_seconds":S,"tuples_per_sec":T,"results":R,
//    "speedup_vs_1":X}
// so future PRs can track the scaling trajectory mechanically. A human
// summary goes to stderr. Result counts are checked for snapshot
// plausibility (a worker count must not lose all results).

#include "bench_common.h"

int main() {
  using namespace sgq;

  struct Workload {
    const char* name;
    const char* query;
  };
  const Workload workloads[] = {
      {"path-closure", "Answer(x,y) <- a2q+(x,y)"},
      {"pattern-2atom", "Answer(x,z) <- a2q(x,y), c2a(y,z)"},
      {"mixed", "Answer(x,z) <- a2q+(x,y), c2q(y,z)"},
  };
  const std::size_t kBatch = 512;

  int failures = 0;
  for (const Workload& w : workloads) {
    std::fprintf(stderr, "-- %s --\n", w.name);
    double baseline_tput = 0;
    std::size_t baseline_results = 0;
    for (std::size_t workers : {std::size_t{1}, std::size_t{2},
                                std::size_t{4}, std::size_t{8}}) {
      Vocabulary vocab;
      auto stream = bench::SoStream(&vocab);
      bench::CheckOk(stream.status(), "stream");
      auto query = MakeQuery(w.query, bench::PaperWindow(), &vocab);
      bench::CheckOk(query.status(), w.name);
      EngineOptions options;
      options.batch_size = kBatch;
      options.num_workers = workers;
      auto metrics =
          RunSga(*stream, *query, vocab, options,
                 std::string(w.name) + "/workers=" + std::to_string(workers));
      bench::CheckOk(metrics.status(), "run");

      const double tput = metrics->Throughput();
      if (workers == 1) {
        baseline_tput = tput;
        baseline_results = metrics->results_emitted;
      } else if (metrics->results_emitted == 0 && baseline_results != 0) {
        std::fprintf(stderr,
                     "workers=%zu produced no results (baseline %zu)\n",
                     workers, baseline_results);
        ++failures;
      }
      const double speedup = baseline_tput > 0 ? tput / baseline_tput : 0;
      std::printf(
          "{\"bench\":\"runtime_parallel\",\"workload\":\"%s\","
          "\"workers\":%zu,\"batch\":%zu,\"edges\":%zu,"
          "\"elapsed_seconds\":%.6f,\"tuples_per_sec\":%.1f,"
          "\"results\":%zu,\"speedup_vs_1\":%.3f}\n",
          w.name, workers, kBatch, metrics->edges_processed,
          metrics->elapsed_seconds, tput, metrics->results_emitted, speedup);
      std::fprintf(stderr,
                   "  workers=%zu  %10.0f tuples/s  (%.2fx vs 1)  "
                   "%zu results\n",
                   workers, tput, speedup, metrics->results_emitted);
    }
  }
  return failures == 0 ? 0 : 1;
}

// Sharded multi-worker scaling: throughput of the SGA query processor as
// a function of ExecutorOptions::num_workers (DESIGN.md §2.4).
//
// Workloads are the window benchmark mix on the SO-like stream (dense and
// cyclic, so PATH traversal work dominates and parallelizes): a path
// closure, a two-atom join, and the mixed query. Every configuration runs
// with the same micro-batch size so the comparison isolates sharding.
//
// Output: one JSON object per line on stdout —
//   {"bench":"runtime_parallel","workload":...,"workers":N,"batch":B,
//    "edges":E,"elapsed_seconds":S,"tuples_per_sec":T,"results":R,
//    "emission_ratio":Q,"speedup_vs_1":X,
//    "ops_touched_per_edge":F,"index_skipped_dispatches":D}
// so future PRs can track the scaling trajectory mechanically. A human
// summary goes to stderr. Result counts are checked for snapshot
// plausibility (a worker count must not lose all results) and for
// emission volume: the merge-side coalescer at the exchange (DESIGN.md
// §2.4) must keep multi-worker emission counts at single-worker volume —
// exactly for the pure PATTERN workload, and within a small tolerance for
// the mixed workload (sharded PATH upstream may split the same snapshot
// coverage into differently-cut intervals, which the exchange cannot
// re-merge).

#include "bench_common.h"

int main() {
  using namespace sgq;

  struct Workload {
    const char* name;
    const char* query;
    /// Allowed multi-worker emission inflation over workers=1 (1.0 =
    /// exact parity, enforced via the merge-side coalescer).
    double max_emission_ratio;
  };
  const Workload workloads[] = {
      // PATH partitions output values by tree root: duplicate-free across
      // shards, but interval *cuts* may differ, so volume only roughly
      // tracks workers=1.
      {"path-closure", "Answer(x,y) <- a2q+(x,y)", 1.05},
      // Top-level PATTERN over scans: the merge-side coalescer restores
      // exact single-worker volume.
      {"pattern-2atom", "Answer(x,z) <- a2q(x,y), c2a(y,z)", 1.0},
      // PATTERN over sharded PATH: coalesced at the exchange, with
      // tolerance for upstream interval cuts.
      {"mixed", "Answer(x,z) <- a2q+(x,y), c2q(y,z)", 1.05},
  };
  const std::size_t kBatch = 512;

  int failures = 0;
  for (const Workload& w : workloads) {
    std::fprintf(stderr, "-- %s --\n", w.name);
    double baseline_tput = 0;
    std::size_t baseline_results = 0;
    for (std::size_t workers : {std::size_t{1}, std::size_t{2},
                                std::size_t{4}, std::size_t{8}}) {
      Vocabulary vocab;
      auto stream = bench::SoStream(&vocab);
      bench::CheckOk(stream.status(), "stream");
      auto query = MakeQuery(w.query, bench::PaperWindow(), &vocab);
      bench::CheckOk(query.status(), w.name);
      EngineOptions options;
      options.batch_size = kBatch;
      options.num_workers = workers;
      auto metrics =
          RunSga(*stream, *query, vocab, options,
                 std::string(w.name) + "/workers=" + std::to_string(workers));
      bench::CheckOk(metrics.status(), "run");

      const double tput = metrics->Throughput();
      double emission_ratio = 1.0;
      if (workers == 1) {
        baseline_tput = tput;
        baseline_results = metrics->results_emitted;
      } else {
        if (metrics->results_emitted == 0 && baseline_results != 0) {
          std::fprintf(stderr,
                       "workers=%zu produced no results (baseline %zu)\n",
                       workers, baseline_results);
          ++failures;
        }
        emission_ratio =
            baseline_results > 0
                ? static_cast<double>(metrics->results_emitted) /
                      static_cast<double>(baseline_results)
                : 1.0;
        if (emission_ratio > w.max_emission_ratio) {
          std::fprintf(stderr,
                       "workers=%zu emission volume %zu exceeds workers=1 "
                       "volume %zu beyond the %.2f bound (merge-side "
                       "coalescer regression?)\n",
                       workers, metrics->results_emitted, baseline_results,
                       w.max_emission_ratio);
          ++failures;
        }
        // Guard below too: the coalescer may suppress a hair under
        // workers=1 (merge order presents covering intervals first), but
        // a substantial deficit means results were lost, not coalesced.
        if (emission_ratio < 0.95) {
          std::fprintf(stderr,
                       "workers=%zu emission volume %zu fell below 95%% "
                       "of the workers=1 volume %zu (results lost?)\n",
                       workers, metrics->results_emitted, baseline_results);
          ++failures;
        }
      }
      const double speedup = baseline_tput > 0 ? tput / baseline_tput : 0;
      std::printf(
          "{\"bench\":\"runtime_parallel\",\"workload\":\"%s\","
          "\"workers\":%zu,\"cpus\":%zu,\"batch\":%zu,\"edges\":%zu,"
          "\"elapsed_seconds\":%.6f,\"tuples_per_sec\":%.1f,"
          "\"results\":%zu,\"emission_ratio\":%.4f,"
          "\"speedup_vs_1\":%.3f,\"state_bytes\":%zu,"
          "\"ingest_stall_ns\":%llu,\"exec_stall_ns\":%llu,"
          "\"ops_touched_per_edge\":%.3f,"
          "\"index_skipped_dispatches\":%zu%s}\n",
          w.name, workers, bench::Cpus(), kBatch, metrics->edges_processed,
          metrics->elapsed_seconds, tput, metrics->results_emitted,
          emission_ratio, speedup, metrics->state_bytes,
          static_cast<unsigned long long>(metrics->ingest_stall_ns),
          static_cast<unsigned long long>(metrics->exec_stall_ns),
          metrics->OpsTouchedPerEdge(), metrics->index_skipped_dispatches,
          bench::CheckpointJson(*metrics).c_str());
      std::fprintf(stderr,
                   "  workers=%zu  %10.0f tuples/s  (%.2fx vs 1)  "
                   "%zu results (%.3fx emission)\n",
                   workers, tput, speedup, metrics->results_emitted,
                   emission_ratio);
    }
  }
  return failures == 0 ? 0 : 1;
}

// Hot operator-state microbench: single-worker ingest throughput and
// time-advance tail latency on a deletion-heavy gallery workload.
//
// This is the tracking bench for the flat-hash/arena/expiry-calendar state
// layer: every workload is dominated by stateful-operator access — the
// PATH spanning forests and window adjacency (S-PATH and Δ-tree, the
// latter paying DRed-style expiry re-derivation), and the PATTERN
// symmetric hash-join tables. Deletions are frequent (the generator
// deletes a recent edge with probability 0.15), so the delete/re-derive
// and retraction paths are hot too, not just inserts.
//
// Output: one JSON object per line on stdout —
//   {"bench":"state_hot","workload":...,"workers":1,"batch":B,"edges":E,
//    "elapsed_seconds":S,"tuples_per_sec":T,"p99_slide_seconds":L,
//    "results":R,"state_entries":N,"state_bytes":M,
//    "ops_touched_per_edge":F,"index_skipped_dispatches":D}
// plus a human summary on stderr. Compare against the committed
// pre-change numbers in bench/baselines/BENCH_state_hot.json with
// scripts/bench_diff.py.

#include <string>
#include <vector>

#include "bench_common.h"
#include "workload/plan_gallery.h"

int main() {
  using namespace sgq;

  // The deletion-heavy SO-like stream shared by every workload below.
  // Smaller than bench_common::SoStream: the deletion-heavy PATTERN
  // retraction replay is O(state) per deletion, so the stream is sized for
  // seconds, not hours, at scale 1.
  Vocabulary vocab;
  SoOptions so;
  so.num_vertices = bench::Scaled(320);
  so.num_edges = bench::Scaled(1125);
  so.edges_per_hour = 2.5;
  so.deletion_probability = 0.15;
  so.deletion_horizon = 2048;
  auto stream = GenerateSoStream(so, &vocab);
  bench::CheckOk(stream.status(), "stream");

  const std::size_t kBatch = 1;  // tuple-at-a-time: state access dominates

  struct Workload {
    std::string name;
    RunMetrics metrics;
  };
  std::vector<Workload> rows;

  auto run_query = [&](const std::string& name, const char* query,
                       PathImpl impl) {
    std::fprintf(stderr, "running %s...\n", name.c_str());
    auto q = MakeQuery(query, bench::PaperWindow(), &vocab);
    bench::CheckOk(q.status(), name.c_str());
    EngineOptions options;
    options.batch_size = kBatch;
    options.num_workers = 1;
    options.path_impl = impl;
    auto metrics = RunSga(*stream, *q, vocab, options, name);
    bench::CheckOk(metrics.status(), name.c_str());
    std::fprintf(stderr, "  %.2fs\n", metrics->elapsed_seconds);
    rows.push_back({name, *metrics});
  };

  // PATH-dominated: transitive closure over the densest label, with both
  // physical implementations (Δ-tree turns every expiry wave into a
  // delete/re-derive round).
  run_query("path-spath", "Answer(x,y) <- a2q+(x,y)", PathImpl::kSPath);
  run_query("path-delta", "Answer(x,y) <- a2q+(x,y)", PathImpl::kDeltaPath);
  // PATTERN-dominated: the symmetric hash-join pipeline.
  run_query("pattern-3atom", "Answer(x,w) <- a2q(x,y), c2a(y,z), c2q(z,w)",
            PathImpl::kSPath);
  // Mixed: join over a path closure (window sharing + both state kinds).
  run_query("mixed", "Answer(x,z) <- a2q+(x,y), c2q(y,z)", PathImpl::kSPath);

  // Gallery plan: Q4's canonical loop-caching plan (PATTERN feeding PATH).
  {
    std::fprintf(stderr, "running q4-sga...\n");
    auto plans = Q4Plans(&vocab, "a2q", "c2a", "c2q", bench::PaperWindow());
    EngineOptions options;
    options.batch_size = kBatch;
    options.num_workers = 1;
    auto metrics = RunSgaPlan(*stream, *plans[0].second, vocab, options,
                              "q4-sga");
    bench::CheckOk(metrics.status(), "q4-sga");
    rows.push_back({"q4-sga", *metrics});
  }

  std::fprintf(stderr,
               "state_hot (workers=1, deletion-heavy SO stream)\n"
               "%-16s %14s %16s %10s %12s\n",
               "workload", "tput (edges/s)", "p99 slide (ms)", "results",
               "state bytes");
  for (const Workload& w : rows) {
    std::printf(
        "{\"bench\":\"state_hot\",\"workload\":\"%s\",\"workers\":1,"
        "\"cpus\":%zu,"
        "\"batch\":%zu,\"edges\":%zu,\"elapsed_seconds\":%.6f,"
        "\"tuples_per_sec\":%.1f,\"p99_slide_seconds\":%.6f,"
        "\"results\":%zu,\"state_entries\":%zu,\"state_bytes\":%zu,"
        "\"ingest_stall_ns\":%llu,\"exec_stall_ns\":%llu,"
        "\"ops_touched_per_edge\":%.3f,\"index_skipped_dispatches\":%zu"
        "%s}\n",
        w.name.c_str(), bench::Cpus(), kBatch, w.metrics.edges_processed,
        w.metrics.elapsed_seconds, w.metrics.Throughput(),
        w.metrics.tail_latency_seconds, w.metrics.results_emitted,
        w.metrics.state_entries, w.metrics.state_bytes,
        static_cast<unsigned long long>(w.metrics.ingest_stall_ns),
        static_cast<unsigned long long>(w.metrics.exec_stall_ns),
        w.metrics.OpsTouchedPerEdge(), w.metrics.index_skipped_dispatches,
        bench::CheckpointJson(w.metrics).c_str());
    std::fprintf(stderr, "%-16s %14.0f %16.3f %10zu %12zu\n", w.name.c_str(),
                 w.metrics.Throughput(),
                 w.metrics.tail_latency_seconds * 1e3,
                 w.metrics.results_emitted, w.metrics.state_bytes);
  }
  return 0;
}

// Figure 14: throughput and tail latency of Q3 = a.b*.c* under the
// canonical SGA plan and the fused single-PATH plan P1, on SO and SNB
// (§7.4).

#include "bench_plans.h"

namespace {

std::vector<sgq::bench::NamedPlan> SoPlans(sgq::Vocabulary* vocab,
                                           sgq::WindowSpec w) {
  return sgq::Q3Plans(vocab, "a2q", "c2q", "c2a", w);
}
std::vector<sgq::bench::NamedPlan> SnbPlans(sgq::Vocabulary* vocab,
                                            sgq::WindowSpec w) {
  return sgq::Q3Plans(vocab, "likes", "replyOf", "hasCreator", w);
}

}  // namespace

int main() {
  sgq::bench::RunPlanBench("Figure 14 (Q3 plan space)", SoPlans, SnbPlans);
  return 0;
}

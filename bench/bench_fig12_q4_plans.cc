// Figure 12: throughput and tail latency of Q4 = (a.b.c)+ under the
// canonical (loop-caching) SGA plan and the alternative plans P1/P2/P3
// obtained through the §5.4 transformation rules, on SO and SNB.
//
// Expected shape (paper): the fused plans can beat the canonical plan by
// tens of percent — the rule-generated plan space is worth exploring.

#include "bench_plans.h"

namespace {

std::vector<sgq::bench::NamedPlan> SoPlans(sgq::Vocabulary* vocab,
                                           sgq::WindowSpec w) {
  return sgq::Q4Plans(vocab, "a2q", "c2q", "c2a", w);
}
std::vector<sgq::bench::NamedPlan> SnbPlans(sgq::Vocabulary* vocab,
                                            sgq::WindowSpec w) {
  return sgq::Q4Plans(vocab, "knows", "likes", "hasCreator", w);
}

}  // namespace

int main() {
  sgq::bench::RunPlanBench("Figure 12 (Q4 plan space)", SoPlans, SnbPlans);
  return 0;
}

// Multi-query engine scaling (core/engine.h, DESIGN.md §3): throughput of
// N concurrent standing queries on one shared executor, with and without
// cross-query operator sharing.
//
// The query set cycles through the plan gallery (workload/plan_gallery.h)
// over the SO-like stream's labels — the Q4/Q2/Q3 plan-space variants
// overlap heavily (shared scans, shared patterns, shared path closures),
// and cycling past the gallery size registers *identical* plans, the
// million-subscriber regime where sharing collapses a whole registration
// to one extra sink. Without sharing every registration compiles a
// private operator topology on the same executor — the ablation baseline.
//
// Output: one JSON object per line on stdout —
//   {"bench":"multi_query","queries":K,"sharing":true|false,"ops":N,
//    "shared_subtrees":S,"cross_query_shared":X,"edges":E,
//    "elapsed_seconds":T,"tuples_per_sec":R,"results_total":C,
//    "speedup_vs_unshared":Y,
//    "ops_touched_per_edge":F,"index_skipped_dispatches":D}
// (shared_subtrees includes within-plan reuse and is nonzero even in the
// unshared ablation; cross_query_shared is the cross-registration
// sharing proper and is 0 there.)
// A human summary goes to stderr. Failure conditions: with sharing on,
// the shared operator core (ops minus per-query sinks) must stop growing
// once the distinct gallery is registered (per-edge work for shared
// prefixes is O(1) in the number of subscribing queries), and per-query
// result counts must not depend on whether sharing is enabled.

#include <vector>

#include "bench_common.h"
#include "workload/plan_gallery.h"

int main() {
  using namespace sgq;

  Vocabulary vocab;
  // A reduced SO-like stream: the unshared 64-query configuration pushes
  // every edge through ~64 private topologies.
  SoOptions so;
  so.num_vertices = bench::Scaled(1200);
  so.num_edges = bench::Scaled(3000);
  so.edges_per_hour = 2.5;
  auto stream = GenerateSoStream(so, &vocab);
  bench::CheckOk(stream.status(), "stream");

  // The overlapping gallery: every plan-space variant of Q4, Q2 and Q3
  // over the same three labels.
  std::vector<NamedPlan> gallery;
  for (auto& p : Q4Plans(&vocab, "a2q", "c2a", "c2q", bench::PaperWindow())) {
    gallery.push_back(std::move(p));
  }
  for (auto& p : Q2Plans(&vocab, "a2q", "c2a", bench::PaperWindow())) {
    gallery.push_back(std::move(p));
  }
  for (auto& p : Q3Plans(&vocab, "a2q", "c2a", "c2q", bench::PaperWindow())) {
    gallery.push_back(std::move(p));
  }
  const std::size_t kBatch = 256;

  int failures = 0;
  std::size_t shared_core_at_gallery = 0;
  for (std::size_t num_queries : {std::size_t{1}, std::size_t{4},
                                  std::size_t{16}, std::size_t{64}}) {
    std::vector<const LogicalOp*> plans;
    plans.reserve(num_queries);
    for (std::size_t q = 0; q < num_queries; ++q) {
      plans.push_back(gallery[q % gallery.size()].second.get());
    }
    std::fprintf(stderr, "-- %zu queries --\n", num_queries);

    double unshared_tput = 0;
    std::vector<std::size_t> unshared_counts;
    for (const bool sharing : {false, true}) {
      EngineOptions options;
      options.batch_size = kBatch;
      options.cross_query_sharing = sharing;
      auto metrics = RunMultiSgaPlans(
          *stream, plans, vocab, options,
          "q=" + std::to_string(num_queries) +
              (sharing ? "/shared" : "/unshared"));
      bench::CheckOk(metrics.status(), "run");

      const double tput = metrics->totals.Throughput();
      if (!sharing) {
        unshared_tput = tput;
        unshared_counts = metrics->per_query_results;
      } else {
        // Sharing must be behaviorally invisible per query. At batch=1 it
        // is byte-identical (tests/multi_query_test.cc); at bench batch
        // sizes the wave order interleaves differently, so coalescer
        // emission *splits* may drift a hair — bound it tightly.
        for (std::size_t q = 0; q < metrics->per_query_results.size();
             ++q) {
          const double a =
              static_cast<double>(metrics->per_query_results[q]);
          const double b = static_cast<double>(unshared_counts[q]);
          if (a > b * 1.01 + 5 || b > a * 1.01 + 5) {
            std::fprintf(stderr,
                         "query %zu: result count diverges between "
                         "sharing modes (%zu vs %zu) at %zu queries\n",
                         q, metrics->per_query_results[q],
                         unshared_counts[q], num_queries);
            ++failures;
          }
        }
        // O(1)-in-K operator core: once every distinct gallery plan is
        // registered, additional subscribers add only their sink.
        const std::size_t core_ops = metrics->num_operators - num_queries;
        if (num_queries >= gallery.size()) {
          if (shared_core_at_gallery == 0) {
            shared_core_at_gallery = core_ops;
          } else if (core_ops != shared_core_at_gallery) {
            std::fprintf(stderr,
                         "shared operator core grew from %zu to %zu ops "
                         "past the distinct gallery\n",
                         shared_core_at_gallery, core_ops);
            ++failures;
          }
        }
      }
      const double speedup =
          sharing && unshared_tput > 0 ? tput / unshared_tput : 1.0;
      if (!sharing && metrics->cross_query_shared != 0) {
        std::fprintf(stderr,
                     "unshared run reports %zu cross-query shared "
                     "subtrees\n",
                     metrics->cross_query_shared);
        ++failures;
      }
      std::printf(
          "{\"bench\":\"multi_query\",\"queries\":%zu,\"sharing\":%s,"
          "\"cpus\":%zu,\"ops\":%zu,\"shared_subtrees\":%zu,"
          "\"cross_query_shared\":%zu,\"edges\":%zu,"
          "\"elapsed_seconds\":%.6f,\"tuples_per_sec\":%.1f,"
          "\"results_total\":%zu,\"speedup_vs_unshared\":%.3f,"
          "\"state_bytes\":%zu,"
          "\"ingest_stall_ns\":%llu,\"exec_stall_ns\":%llu,"
          "\"ops_touched_per_edge\":%.3f,"
          "\"index_skipped_dispatches\":%zu%s}\n",
          num_queries, sharing ? "true" : "false", bench::Cpus(),
          metrics->num_operators,
          metrics->shared_subtrees, metrics->cross_query_shared,
          metrics->totals.edges_processed,
          metrics->totals.elapsed_seconds, tput,
          metrics->totals.results_emitted, speedup,
          metrics->totals.state_bytes,
          static_cast<unsigned long long>(metrics->totals.ingest_stall_ns),
          static_cast<unsigned long long>(metrics->totals.exec_stall_ns),
          metrics->totals.OpsTouchedPerEdge(),
          metrics->totals.index_skipped_dispatches,
          bench::CheckpointJson(metrics->totals).c_str());
      std::fprintf(stderr,
                   "  %-9s %10.0f tuples/s  %4zu ops  %5zu results"
                   "  (%.2fx vs unshared)\n",
                   sharing ? "shared" : "unshared", tput,
                   metrics->num_operators, metrics->totals.results_emitted,
                   speedup);
    }
  }
  return failures == 0 ? 0 : 1;
}

// Figure 11: sensitivity of the DD-style baseline to the slide interval
// beta on the SO stream — 3h..4d with |W| = 30 days (§7.3).
//
// Expected shape (paper): unlike the SGA engine (Fig. 10b), DD batches all
// arrivals of a slide into one epoch, so its throughput *increases* with
// the slide interval (the latency/throughput trade-off of epoch batching);
// tail latency grows because each epoch does more work at once.

#include "bench_common.h"

int main() {
  using namespace sgq;
  std::printf("=== Figure 11 — SO, DD baseline slide sweep (|W|=30d) ===\n");
  const std::pair<const char*, Timestamp> slides[] = {
      {"3h", 3},  {"6h", 6},  {"12h", 12},
      {"1d", 24}, {"2d", 48}, {"4d", 96}};
  for (const BenchQuery& bq : SoQuerySet()) {
    PrintMetricsHeader("\n-- " + bq.name + " --");
    for (const auto& [label, slide] : slides) {
      Vocabulary vocab;
      auto stream = bench::SoStream(&vocab);
      bench::CheckOk(stream.status(), "stream");
      auto query =
          MakeQuery(bq.text, WindowSpec(30 * kDay, slide), &vocab);
      bench::CheckOk(query.status(), bq.name.c_str());
      auto metrics = RunDd(*stream, *query, vocab,
                           bq.name + "/slide=" + label);
      bench::CheckOk(metrics.status(), "run");
      PrintMetricsRow(*metrics);
    }
  }
  return 0;
}

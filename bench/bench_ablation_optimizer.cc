// Ablation: does the plan optimizer (core/optimizer.h) pick winning plans?
//
// For each path-shaped workload query, compare
//   (a) the canonical SGQParser plan,
//   (b) the plan chosen by the heuristic cost model, and
//   (c) the plan chosen by sampling a stream prefix,
// on the SO stream. This quantifies the benefit of the §5.4/§7.4 plan
// space beyond the fixed P1/P2/P3 snapshots of Figures 12-14, and checks
// that the optimizer's choices do not regress.

#include "bench_common.h"
#include "core/optimizer.h"

int main() {
  using namespace sgq;
  std::printf(
      "=== Ablation — optimizer plan choice vs canonical (SO) ===\n");

  const char* texts[] = {
      "Answer(x,y) <- a2q(x,z), c2q*(z,y)",                    // Q2
      "Answer(x,y) <- a2q(x,z), c2q*(z,w), c2a*(w,y)",         // Q3
      "D(x,y) <- a2q(x,z1), c2q(z1,z2), c2a(z2,y)\n"
      "Answer(x,y) <- D+(x,y)",                                // Q4
  };
  const char* names[] = {"Q2", "Q3", "Q4"};

  for (int i = 0; i < 3; ++i) {
    Vocabulary vocab;
    auto stream = bench::SoStream(&vocab);
    bench::CheckOk(stream.status(), "stream");
    auto query = MakeQuery(texts[i], bench::PaperWindow(), &vocab);
    bench::CheckOk(query.status(), names[i]);
    auto canonical = TranslateToCanonicalPlan(*query, vocab);
    bench::CheckOk(canonical.status(), "translate");

    // Sample = the first 15% of the stream.
    InputStream sample(stream->begin(),
                       stream->begin() +
                           static_cast<std::ptrdiff_t>(stream->size() / 7));

    auto heuristic = OptimizeHeuristic(**canonical, &vocab, 32);
    bench::CheckOk(heuristic.status(), "heuristic optimize");
    auto sampled = OptimizeBySampling(**canonical, &vocab, sample, 12);
    bench::CheckOk(sampled.status(), "sampling optimize");

    PrintMetricsHeader(std::string("\n-- ") + names[i] + " --");
    for (const auto& [label, plan] :
         {std::pair<const char*, const LogicalOp*>{"canonical",
                                                   canonical->get()},
          {"heuristic-opt", heuristic->get()},
          {"sampling-opt", sampled->get()}}) {
      auto metrics =
          RunSgaPlan(*stream, *plan, vocab, EngineOptions{}, label);
      bench::CheckOk(metrics.status(), label);
      PrintMetricsRow(*metrics);
    }
  }
  return 0;
}

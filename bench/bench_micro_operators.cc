// Operator micro-benchmarks (google-benchmark): the per-tuple costs behind
// the end-to-end numbers — DFA compilation, coalescing, window-store and
// join-table maintenance, Δ-PATH expansion on chains and cliques.

#include <benchmark/benchmark.h>

#include <random>

#include "core/basic_ops.h"
#include "core/pattern_op.h"
#include "core/spath_op.h"
#include "core/window_store.h"
#include "sgq/sgq.h"

namespace sgq {
namespace {

void BM_RegexToMinimalDfa(benchmark::State& state) {
  Vocabulary vocab;
  auto regex = ParseRegex("(a b c)+ | a (b | c)* a", &vocab);
  for (auto _ : state) {
    Dfa dfa = Dfa::FromRegex(*regex);
    benchmark::DoNotOptimize(dfa.NumStates());
  }
}
BENCHMARK(BM_RegexToMinimalDfa);

void BM_CoalesceBatch(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<Sgt> tuples;
  std::mt19937_64 rng(7);
  for (std::size_t i = 0; i < n; ++i) {
    Timestamp ts = static_cast<Timestamp>(rng() % 1000);
    tuples.emplace_back(rng() % 50, rng() % 50, 0,
                        Interval(ts, ts + 20 + static_cast<Timestamp>(
                                                   rng() % 30)));
  }
  for (auto _ : state) {
    auto merged = Coalesce(tuples);
    benchmark::DoNotOptimize(merged.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_CoalesceBatch)->Arg(256)->Arg(2048);

void BM_StreamingCoalescerOffer(benchmark::State& state) {
  std::mt19937_64 rng(9);
  StreamingCoalescer c;
  Timestamp t = 0;
  for (auto _ : state) {
    ++t;
    Sgt tuple(rng() % 64, rng() % 64, 0, Interval(t, t + 40));
    benchmark::DoNotOptimize(c.Offer(tuple));
    if (t % 512 == 0) c.PurgeBefore(t - 64);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StreamingCoalescerOffer);

void BM_WindowStoreInsertPurge(benchmark::State& state) {
  std::mt19937_64 rng(5);
  WindowEdgeStore store;
  Timestamp t = 0;
  for (auto _ : state) {
    ++t;
    store.Insert(rng() % 256, rng() % 256, rng() % 3,
                 Interval(t, t + 100));
    if (t % 1024 == 0) {
      auto dropped = store.PurgeExpired(t - 50);
      benchmark::DoNotOptimize(dropped.size());
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WindowStoreInsertPurge);

void BM_SymmetricHashJoin(benchmark::State& state) {
  // Two-atom join a(x,y), b(y,z) fed with random tuples.
  Vocabulary vocab;
  LabelId a = *vocab.InternInputLabel("a");
  LabelId b = *vocab.InternInputLabel("b");
  LabelId out = *vocab.InternDerivedLabel("out");
  std::vector<LogicalPlan> children;
  children.push_back(MakeWScan(a, WindowSpec(100, 1)));
  children.push_back(MakeWScan(b, WindowSpec(100, 1)));
  auto logical = MakePattern(out, {{"x", "y"}, {"y", "z"}}, "x", "z",
                             std::move(children));

  class NullSink : public PhysicalOp {
   public:
    void OnTuple(int, const Sgt&) override { ++count; }
    std::string Name() const override { return "NULL"; }
    std::size_t count = 0;
  };

  PatternOp op(*logical);
  NullSink sink;
  OutputChannel op_wire(&sink, 0);
  op.BindOutput(&op_wire);
  std::mt19937_64 rng(3);
  Timestamp t = 0;
  for (auto _ : state) {
    ++t;
    const int port = static_cast<int>(rng() % 2);
    op.OnTuple(port, Sgt(rng() % 128, rng() % 128, port == 0 ? a : b,
                         Interval(t, t + 100)));
    if (t % 1024 == 0) op.Purge(t - 50);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SymmetricHashJoin);

void BM_SPathExpand(benchmark::State& state) {
  // a+ over a random graph: measures Δ-PATH maintenance per edge.
  Vocabulary vocab;
  LabelId a = *vocab.InternInputLabel("a");
  LabelId out = *vocab.InternDerivedLabel("out");
  auto regex = ParseRegex("a+", &vocab);
  const std::size_t num_vertices = static_cast<std::size_t>(state.range(0));

  class NullSink : public PhysicalOp {
   public:
    void OnTuple(int, const Sgt&) override {}
    std::string Name() const override { return "NULL"; }
  };

  SPathOp op(Dfa::FromRegex(*regex), out);
  NullSink sink;
  OutputChannel op_wire(&sink, 0);
  op.BindOutput(&op_wire);
  std::mt19937_64 rng(11);
  Timestamp t = 0;
  for (auto _ : state) {
    ++t;
    op.OnTuple(0, Sgt(rng() % num_vertices, rng() % num_vertices, a,
                      Interval(t, t + 200), {}));
    if (t % 512 == 0) op.Purge(t - 100);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SPathExpand)->Arg(64)->Arg(512);

void BM_OracleTransitiveClosure(benchmark::State& state) {
  std::mt19937_64 rng(13);
  VertexPairSet rel;
  for (int i = 0; i < 400; ++i) {
    rel.insert({rng() % 60, rng() % 60});
  }
  for (auto _ : state) {
    auto tc = TransitiveClosure(rel);
    benchmark::DoNotOptimize(tc.size());
  }
}
BENCHMARK(BM_OracleTransitiveClosure);

}  // namespace
}  // namespace sgq

BENCHMARK_MAIN();

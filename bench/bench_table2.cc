// Table 2: throughput (edges/s) and p99 tail latency of one window slide
// for the SGA query processor vs the DD-style baseline, queries Q1-Q7 on
// the SO and SNB streams, |W| = 30 days, slide = 1 day (§7.2).
//
// Expected shape (paper): SGA wins on the dense cyclic SO graph (its PATH
// operator keeps compact per-pair state and expires for free); DD is
// competitive — and ahead on the linear path queries Q1-Q4 — on SNB, whose
// tree-shaped replyOf makes PATH-specific machinery unnecessary.

#include "bench_common.h"

namespace sgq {
namespace {

void RunDataset(const char* dataset_name,
                Result<InputStream> (*make_stream)(Vocabulary*),
                std::vector<BenchQuery> (*make_queries)()) {
  std::printf("\n=== Table 2 — %s, |W|=30d, slide=1d ===\n", dataset_name);
  PrintMetricsHeader("");
  for (const BenchQuery& bq : make_queries()) {
    // Fresh vocabulary/stream per query keeps label ids independent.
    Vocabulary vocab;
    auto stream = make_stream(&vocab);
    bench::CheckOk(stream.status(), "stream");
    auto query = MakeQuery(bq.text, bench::PaperWindow(), &vocab);
    bench::CheckOk(query.status(), bq.name.c_str());

    auto sga = RunSga(*stream, *query, vocab, EngineOptions{},
                      bq.name + "/SGA");
    bench::CheckOk(sga.status(), "SGA run");
    PrintMetricsRow(*sga);

    auto dd = RunDd(*stream, *query, vocab, bq.name + "/DD");
    bench::CheckOk(dd.status(), "DD run");
    PrintMetricsRow(*dd);
  }
}

}  // namespace
}  // namespace sgq

int main() {
  sgq::RunDataset("StackOverflow-like (SO)", sgq::bench::SoStream,
                  sgq::SoQuerySet);
  sgq::RunDataset("LDBC-SNB-like (SNB)", sgq::bench::SnbStream,
                  sgq::SnbQuerySet);
  return 0;
}

// Runtime micro-batching: throughput of the SGA query processor as a
// function of the executor's micro-batch size (DESIGN.md §2.3).
//
// batch = 1 is the tuple-at-a-time baseline (byte-identical to the old
// recursive engine); larger batches amortize per-edge ingest overhead
// (clock reads, source routing, per-tuple scheduling) and propagate
// tuples in topological waves. Expected shape: throughput grows with the
// batch size and saturates once the fixed per-edge costs are amortized;
// result sets are equivalent at every batch size.

#include "bench_common.h"

int main() {
  using namespace sgq;
  std::printf("=== Runtime micro-batch sweep ===\n");

  struct Workload {
    const char* name;
    const char* query;
  };
  const Workload workloads[] = {
      {"pattern-2atom", "Answer(x,z) <- knows(x,y), likes(y,z)"},
      {"path-closure", "Answer(x,y) <- knows+(x,y)"},
      {"mixed", "Answer(x,z) <- knows+(x,y), likes(y,z)"},
  };

  for (const Workload& w : workloads) {
    PrintMetricsHeader(std::string("\n-- ") + w.name + " --");
    std::size_t baseline_results = 0;
    for (std::size_t batch : {std::size_t{1}, std::size_t{64},
                              std::size_t{1024}}) {
      Vocabulary vocab;
      auto stream = bench::SnbStream(&vocab);
      bench::CheckOk(stream.status(), "stream");
      auto query = MakeQuery(w.query, bench::PaperWindow(), &vocab);
      bench::CheckOk(query.status(), w.name);
      EngineOptions options;
      options.batch_size = batch;
      auto metrics = RunSga(*stream, *query, vocab, options,
                            std::string(w.name) + "/batch=" +
                                std::to_string(batch));
      bench::CheckOk(metrics.status(), "run");
      PrintMetricsRow(*metrics);
      if (batch == 1) {
        baseline_results = metrics->results_emitted;
      } else if (metrics->results_emitted == 0 && baseline_results != 0) {
        std::fprintf(stderr, "batch=%zu produced no results (baseline %zu)\n",
                     batch, baseline_results);
        return 1;
      }
    }
  }
  return 0;
}

// Command-line runner: evaluate persistent queries over an edge stream
// (CSV text or SGQB binary — see stream_convert to convert between them).
//
// Usage:
//   stream_query_cli <query-file> <stream> [window] [slide] [--gcore]
//                    [--delta-path] [--slack N] [--batch N] [--workers N]
//                    [--query FILE]... [--no-share] [--async-ingest]
//                    [--pin-workers] [--format csv|binary|auto]
//                    [--parsers N] [--no-query-index] [--mmap] [--no-mmap]
//                    [--checkpoint-dir DIR] [--checkpoint-every N]
//                    [--restore]
//   stream_query_cli --serve <stream> [window] [slide] [engine flags]
//
//   query-file   Datalog rules (rq.h syntax) or a G-CORE query (--gcore)
//   stream       CSV lines `src,label,trg,timestamp[,+|-]` or an SGQB
//                binary stream, timestamp-ordered (with --slack N,
//                bounded disorder is tolerated)
//   window/slide time-based sliding window, default 24 / 1
//   --query FILE register an additional standing query; all queries run
//                on one shared multi-query engine (core/engine.h) with
//                cross-query operator sharing (disable with --no-share),
//                and every result line is tagged `q<i><TAB>`
//   --async-ingest  parse the stream on a dedicated ingest thread,
//                double-buffered against execution (DESIGN.md §6); with
//                --slack N the reorder stage runs on the ingest thread
//                too. Results print when the stream drains.
//   --format F   input stream encoding: csv, binary (SGQB), or auto
//                (default — sniff the magic bytes)
//   --parsers N  shard the parse stage over N parser threads behind an
//                order-restoring merge (DESIGN.md §6); N > 1 implies
//                --async-ingest. Note: with N > 1 over CSV input,
//                vocabulary ids are interned concurrently, so result
//                *names* are deterministic but internal ids (and hence
//                result line order) may vary run to run; binary streams
//                intern their dictionary up front and stay fully
//                deterministic.
//   --mmap / --no-mmap   with --async-ingest, how the stream *file* is
//                served to the parse stage: mmap with sequential
//                readahead (--mmap; the default where available) or
//                portable buffered preads (--no-mmap). Either way the
//                file streams through a bounded readahead window — peak
//                ingest memory is O(window), not O(file), so files
//                larger than RAM ingest fine — and output is
//                byte-identical between the two. Synchronous runs
//                (reorder-slack printing, per-element delivery) still
//                materialize the file.
//   --pin-workers   pin runtime threads to cores (best-effort affinity)
//   --no-query-index   escape hatch: disable the label-discrimination
//                query index (DESIGN.md §3.1) and dispatch every edge /
//                time advance by the legacy full scan. Semantics are
//                identical either way; use only to isolate a suspected
//                index bug or to measure the dispatch win.
//   --checkpoint-dir DIR   crash recovery (DESIGN.md §7): with
//                --checkpoint-every N, write an SGQC snapshot
//                DIR/ckpt-NNNNNN.sgqc after every N-th stream element
//                (the sequence number is the element index / N, so an
//                interrupted run and its resumed continuation produce
//                the same file names). Snapshots are written via temp
//                file + fsync + atomic rename — a crash mid-write never
//                leaves a torn file under a live name. In checkpoint
//                mode results print once, after the stream drains, so a
//                restored run reproduces the complete output stream.
//                Not supported with --async-ingest / --parsers N>1.
//   --serve      subscription-session mode (DESIGN.md §10): instead of a
//                query file, read SUBSCRIBE / UNSUBSCRIBE / RESULTS /
//                INGEST / QUIT commands from stdin (server/session.h
//                protocol) and attach/detach standing queries live on the
//                running engine, interleaved with stream ingest. The one
//                positional argument is the stream; window/slide set the
//                window attached to every subscribed query. Result lines
//                are tagged `s<id><TAB>`. Engine flags (--batch,
//                --workers, --delta-path, --no-share, --no-query-index)
//                apply; --gcore, --query, --slack, --async-ingest and
//                checkpointing are not available in serve mode.
//   --restore    resume from the newest valid checkpoint in
//                --checkpoint-dir: corrupt / truncated / mismatched
//                snapshots are reported and skipped (falling back to
//                the next older one), already-processed stream elements
//                are skipped, and the run continues to the end. Output
//                is identical to the uninterrupted run's.
//
// Prints every result sgt as it is produced, then a metrics summary.
// Without arguments, runs a built-in demo (the paper's Figure 2 stream).

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "sgq/sgq.h"

namespace {

sgq::Result<std::string> ReadFile(const char* path) {
  std::ifstream in(path);
  if (!in) {
    return sgq::Status::NotFound(std::string("cannot open ") + path);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string CheckpointName(const std::string& dir, std::uint64_t seq) {
  char name[32];
  std::snprintf(name, sizeof(name), "ckpt-%06llu.sgqc",
                static_cast<unsigned long long>(seq));
  return dir + "/" + name;
}

/// \brief Checkpoints in `dir` (files named ckpt-<digits>.sgqc), newest
/// sequence number first — the restore candidate order.
std::vector<std::pair<std::uint64_t, std::string>> ListCheckpoints(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return out;
  while (dirent* e = readdir(d)) {
    const char* name = e->d_name;
    const std::size_t len = std::strlen(name);
    if (len <= 10 || std::strncmp(name, "ckpt-", 5) != 0 ||
        std::strcmp(name + len - 5, ".sgqc") != 0) {
      continue;
    }
    std::uint64_t seq = 0;
    bool digits = true;
    for (std::size_t k = 5; k + 5 < len; ++k) {
      if (name[k] < '0' || name[k] > '9') {
        digits = false;
        break;
      }
      seq = seq * 10 + static_cast<std::uint64_t>(name[k] - '0');
    }
    if (!digits) continue;
    out.emplace_back(seq, dir + "/" + name);
  }
  closedir(d);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return out;
}

const char kDemoQuery[] =
    "Answer(x,y) <- follows+(x,y), likes(x,m), posts(y,m)";
const char kDemoStream[] =
    "u,follows,v,7\nv,posts,b,10\ny,follows,u,13\nv,posts,c,17\n"
    "u,posts,a,22\ny,likes,a,28\nu,likes,b,29\nu,likes,c,30\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace sgq;

  std::string query_text = kDemoQuery;
  std::string stream_text = kDemoStream;
  std::string stream_path;  // empty = the built-in demo stream
  std::vector<std::string> extra_query_texts;
  Timestamp window = 24, slide = 1, slack = 0;
  bool use_gcore = false;
  bool format_auto = true;
  std::string checkpoint_dir;
  std::uint64_t checkpoint_every = 0;
  bool restore = false;
  bool serve = false;
  EngineOptions options;

  // Positional meaning depends on --serve (which may come later on the
  // command line), so collect first and interpret after the flag pass.
  std::vector<const char*> positionals;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gcore") == 0) {
      use_gcore = true;
    } else if (std::strcmp(argv[i], "--delta-path") == 0) {
      options.path_impl = PathImpl::kDeltaPath;
    } else if (std::strcmp(argv[i], "--no-share") == 0) {
      options.cross_query_sharing = false;
    } else if (std::strcmp(argv[i], "--async-ingest") == 0) {
      options.async_ingest = true;
    } else if (std::strcmp(argv[i], "--pin-workers") == 0) {
      options.pin_workers = true;
    } else if (std::strcmp(argv[i], "--no-query-index") == 0) {
      options.use_query_index = false;
    } else if (std::strcmp(argv[i], "--mmap") == 0) {
      options.ingest_file_mode = FileIngestMode::kMmap;
    } else if (std::strcmp(argv[i], "--no-mmap") == 0) {
      options.ingest_file_mode = FileIngestMode::kBuffered;
    } else if (std::strcmp(argv[i], "--query") == 0 && i + 1 < argc) {
      auto text = ReadFile(argv[++i]);
      if (!text.ok()) {
        std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
        return 1;
      }
      extra_query_texts.push_back(*text);
    } else if (std::strcmp(argv[i], "--checkpoint-dir") == 0 &&
               i + 1 < argc) {
      checkpoint_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--checkpoint-every") == 0 &&
               i + 1 < argc) {
      int64_t n = 0;
      if (!ParseInt64(argv[++i], &n) || n < 0) {
        std::fprintf(stderr,
                     "--checkpoint-every: expected a non-negative integer, "
                     "got '%s'\n",
                     argv[i]);
        return 2;
      }
      checkpoint_every = static_cast<std::uint64_t>(n);
    } else if (std::strcmp(argv[i], "--restore") == 0) {
      restore = true;
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      serve = true;
    } else if (std::strcmp(argv[i], "--slack") == 0 && i + 1 < argc) {
      int64_t n = 0;
      if (!ParseInt64(argv[++i], &n) || n < 0) {
        std::fprintf(stderr,
                     "--slack: expected a non-negative integer, got '%s'\n",
                     argv[i]);
        return 2;
      }
      slack = n;
    } else if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc) {
      int64_t n = 0;
      if (!ParseInt64(argv[++i], &n) || n <= 0) {
        std::fprintf(stderr, "--batch: expected a positive integer, got '%s'\n",
                     argv[i]);
        return 2;
      }
      options.batch_size = static_cast<std::size_t>(n);
    } else if (std::strcmp(argv[i], "--format") == 0 && i + 1 < argc) {
      ++i;
      if (std::strcmp(argv[i], "csv") == 0) {
        options.ingest_format = StreamFormat::kCsv;
        format_auto = false;
      } else if (std::strcmp(argv[i], "binary") == 0) {
        options.ingest_format = StreamFormat::kBinary;
        format_auto = false;
      } else if (std::strcmp(argv[i], "auto") == 0) {
        format_auto = true;
      } else {
        std::fprintf(stderr,
                     "--format: expected csv, binary or auto, got '%s'\n",
                     argv[i]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--parsers") == 0 && i + 1 < argc) {
      int64_t n = 0;
      if (!ParseInt64(argv[++i], &n) || n <= 0) {
        std::fprintf(stderr,
                     "--parsers: expected a positive integer, got '%s'\n",
                     argv[i]);
        return 2;
      }
      options.ingest_parsers = static_cast<std::size_t>(n);
      if (options.ingest_parsers > 1) options.async_ingest = true;
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      int64_t n = 0;
      if (!ParseInt64(argv[++i], &n) || n <= 0) {
        std::fprintf(stderr,
                     "--workers: expected a positive integer, got '%s'\n",
                     argv[i]);
        return 2;
      }
      options.num_workers = static_cast<std::size_t>(n);
    } else {
      positionals.push_back(argv[i]);
    }
  }

  if (serve) {
    // Serve mode has no query file: <stream> [window] [slide].
    if (!positionals.empty()) stream_path = positionals[0];
    if (positionals.size() > 1) window = std::atoll(positionals[1]);
    if (positionals.size() > 2) slide = std::atoll(positionals[2]);
  } else {
    if (!positionals.empty()) {
      auto text = ReadFile(positionals[0]);
      if (!text.ok()) {
        std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
        return 1;
      }
      query_text = *text;
    }
    if (positionals.size() > 1) {
      // Record the path only: async runs stream the file through the
      // bounded chunk feeder; synchronous paths materialize it later.
      stream_path = positionals[1];
    }
    if (positionals.size() > 2) window = std::atoll(positionals[2]);
    if (positionals.size() > 3) slide = std::atoll(positionals[3]);
  }

  const bool checkpointing = !checkpoint_dir.empty();
  if ((checkpoint_every > 0 || restore) && !checkpointing) {
    std::fprintf(stderr,
                 "--checkpoint-every/--restore require --checkpoint-dir\n");
    return 2;
  }
  if (checkpointing && options.async_ingest) {
    // The pipelined paths have no element-indexed batch boundary to
    // snapshot at (parse and reorder run on other threads mid-flight).
    std::fprintf(stderr,
                 "--checkpoint-dir is not supported with --async-ingest / "
                 "--parsers N > 1; run synchronously to checkpoint\n");
    return 2;
  }
  if (checkpointing) {
    // Best-effort create; a pre-existing directory is fine, anything
    // else surfaces on the first snapshot write.
    ::mkdir(checkpoint_dir.c_str(), 0755);
  }

  if (format_auto) {
    if (stream_path.empty()) {
      options.ingest_format = DetectStreamFormat(stream_text);
    } else {
      // Sniff the magic bytes without materializing the file.
      auto detected = DetectStreamFileFormat(stream_path);
      if (!detected.ok()) {
        std::fprintf(stderr, "%s\n", detected.status().ToString().c_str());
        return 1;
      }
      options.ingest_format = *detected;
    }
  }
  const bool binary = options.ingest_format == StreamFormat::kBinary;

  Vocabulary vocab;

  if (serve) {
    // Subscription-session mode: queries arrive over the line protocol,
    // never from files; the exotic ingest paths don't apply.
    if (use_gcore || !extra_query_texts.empty() || slack > 0 ||
        options.async_ingest || options.ingest_parsers > 1 || checkpointing ||
        restore) {
      std::fprintf(stderr,
                   "--serve is incompatible with --gcore, --query, --slack, "
                   "--async-ingest, --parsers, and checkpointing\n");
      return 2;
    }
    if (!stream_path.empty()) {
      auto text = ReadFileBytes(stream_path);
      if (!text.ok()) {
        std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
        return 1;
      }
      stream_text = std::move(text).ValueOrDie();
    }
    auto stream = binary ? ParseStreamBinary(stream_text, &vocab)
                         : ParseStreamCsv(stream_text, &vocab);
    if (!stream.ok()) {
      std::fprintf(stderr, "stream: %s\n",
                   stream.status().ToString().c_str());
      return 1;
    }
    SessionOptions session_options;
    session_options.engine = options;
    session_options.window = WindowSpec(window, slide);
    SessionServer server(std::move(session_options), &vocab);
    if (Status st = server.Init(); !st.ok()) {
      std::fprintf(stderr, "serve: %s\n", st.ToString().c_str());
      return 1;
    }
    if (Status st = server.Run(*stream, std::cin, std::cout); !st.ok()) {
      std::fprintf(stderr, "serve: %s\n", st.ToString().c_str());
      return 1;
    }
    return 0;
  }
  auto parse_query = [&](const std::string& text)
      -> sgq::Result<StreamingGraphQuery> {
    if (use_gcore) return ParseGCore(text, &vocab);
    return MakeQuery(text, WindowSpec(window, slide), &vocab);
  };

  std::vector<StreamingGraphQuery> queries;
  {
    auto parsed = parse_query(query_text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "query: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    queries.push_back(*parsed);
  }
  for (const std::string& text : extra_query_texts) {
    auto parsed = parse_query(text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "query %zu: %s\n", queries.size(),
                   parsed.status().ToString().c_str());
      return 1;
    }
    queries.push_back(*parsed);
  }
  const bool multi = queries.size() > 1;

  // Async ingest parses during the run (on the ingest/parser threads); the
  // eager whole-stream parse is the synchronous paths' input. The slack>0
  // synchronous path parses incrementally below instead.
  sgq::Result<InputStream> stream = InputStream{};
  if (options.async_ingest) {
    // The slack stage folds into the ingest pipeline (DESIGN.md §6); a
    // stream file never materializes — it feeds the pipeline through the
    // bounded chunk feeder below.
    options.ingest_slack = slack;
  } else {
    // Synchronous paths deliver per element (printing as results appear),
    // so they materialize the file first.
    if (!stream_path.empty()) {
      // Binary-safe buffered read: SGQB streams contain NUL bytes.
      auto text = ReadFileBytes(stream_path);
      if (!text.ok()) {
        std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
        return 1;
      }
      stream_text = std::move(text).ValueOrDie();
    }
    if (slack == 0) {
      stream = binary ? ParseStreamBinary(stream_text, &vocab)
                      : ParseStreamCsv(stream_text, &vocab);
      if (!stream.ok()) {
        std::fprintf(stderr,
                     "stream: %s (out-of-order input? try --slack N)\n",
                     stream.status().ToString().c_str());
        return 1;
      }
    }
  }

  // All queries — one or many — register on a shared multi-query engine;
  // a single query is exactly the classic QueryProcessor configuration.
  // The engine lives behind a pointer so a failed restore attempt can
  // discard it wholesale and rebuild fresh (no partial restore ever runs).
  auto make_engine = [&]() -> Result<std::unique_ptr<Engine>> {
    auto e = std::make_unique<Engine>(options);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      SGQ_RETURN_NOT_OK(e->AddQuery(queries[q], vocab).status());
    }
    SGQ_RETURN_NOT_OK(e->Finalize());
    return e;
  };
  auto built = make_engine();
  if (!built.ok()) {
    std::fprintf(stderr, "compile: %s\n", built.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Engine> engine_ptr = std::move(built).ValueOrDie();

  // Crash recovery: try the newest snapshot first; one that fails
  // validation (torn file, flipped bit, version skew, option mismatch)
  // is reported and skipped, and the engine is rebuilt fresh before the
  // next candidate so a partially applied restore can never leak in.
  auto reorder_buffer = std::make_unique<ReorderBuffer>(slack);
  std::uint64_t resume_raw = 0;  // raw stream elements already consumed
  if (restore) {
    bool restored = false;
    for (const auto& [seq, path] : ListCheckpoints(checkpoint_dir)) {
      (void)seq;
      std::unordered_map<std::string, std::string> extra;
      Status st = engine_ptr->Restore(path, &vocab, &extra);
      if (st.ok()) {
        // The reorder stage (--slack) rides along as an extra section:
        // raw-element resume index, then the buffer's pending heap.
        auto it = extra.find("x-reorder");
        if (it != extra.end()) {
          ByteReader in(it->second, path + ": section 'x-reorder'");
          const std::uint64_t raw = in.U64();
          st = reorder_buffer->DeserializeState(&in);
          if (st.ok()) st = in.ExpectEnd();
          if (st.ok()) resume_raw = raw;
        } else if (slack > 0) {
          st = Status::InvalidArgument(path +
                               ": checkpoint has no reorder-buffer section "
                               "(taken without --slack?)");
        } else {
          resume_raw = engine_ptr->ingested();
        }
        if (st.ok()) {
          std::fprintf(stderr,
                       "restored %s (%llu stream elements already "
                       "processed)\n",
                       path.c_str(),
                       static_cast<unsigned long long>(resume_raw));
          restored = true;
          break;
        }
      }
      std::fprintf(stderr, "restore: %s; falling back to previous snapshot\n",
                   st.ToString().c_str());
      auto rebuilt = make_engine();
      if (!rebuilt.ok()) {
        std::fprintf(stderr, "compile: %s\n",
                     rebuilt.status().ToString().c_str());
        return 1;
      }
      engine_ptr = std::move(rebuilt).ValueOrDie();
      reorder_buffer = std::make_unique<ReorderBuffer>(slack);
      resume_raw = 0;
    }
    if (!restored) {
      std::fprintf(stderr,
                   "restore: no usable checkpoint in %s; starting fresh\n",
                   checkpoint_dir.c_str());
    }
  }
  Engine& engine = *engine_ptr;
  std::fprintf(stderr, "plan:\n%s", engine.Explain().c_str());
  if (multi) {
    std::fprintf(stderr,
                 "%zu queries on %zu operators (%zu shared subtrees)\n",
                 queries.size(), engine.NumOperators(),
                 engine.NumSharedSubtrees());
  }
  std::fprintf(stderr, "\n");

  auto print_results = [&]() {
    for (std::size_t q = 0; q < engine.num_queries(); ++q) {
      for (const Sgt& r : engine.TakeResults(static_cast<QueryId>(q))) {
        if (multi) {
          std::printf("q%zu\t%s\n", q, r.ToString(vocab).c_str());
        } else {
          std::printf("%s\n", r.ToString(vocab).c_str());
        }
      }
    }
  };

  const char* file_mode_name = nullptr;  // set when a file feeds the pipeline
  Stopwatch timer;
  // In checkpoint mode the sink accumulates and everything prints after
  // the stream drains: the full result stream is part of every snapshot,
  // so a restored run reproduces the uninterrupted run's output exactly.
  auto deliver = [&](const Sge& sge) {
    engine.Push(sge);
    if (!checkpointing) print_results();
  };
  auto take_checkpoint = [&](std::uint64_t raw_index,
                             std::string reorder_blob) -> bool {
    std::vector<std::pair<std::string, std::string>> extra;
    if (slack > 0) {
      extra.emplace_back("x-reorder", std::move(reorder_blob));
    }
    const std::string path =
        CheckpointName(checkpoint_dir, raw_index / checkpoint_every);
    Status st = engine.Checkpoint(path, &vocab, std::move(extra));
    if (!st.ok()) {
      std::fprintf(stderr, "checkpoint: %s\n", st.ToString().c_str());
      return false;
    }
    return true;
  };

  if (slack > 0 && options.batch_size > 1 && !options.async_ingest) {
    // The slack path delivers (and prints) results per element, which
    // flushes the ingest queue each time — batching cannot take effect.
    // (With --async-ingest the slack stage lives on the ingest thread and
    // batching works normally.)
    std::fprintf(stderr,
                 "--batch has no effect with --slack; running "
                 "tuple-at-a-time\n");
  }
  if (options.async_ingest) {
    // Pipelined run: the parse executes on the ingest thread (or, with
    // --parsers N > 1, on N parser threads behind the order-restoring
    // merge), overlapped with execution; results materialize when the
    // stream drains. With --slack the cursors tolerate disorder and the
    // pipeline's reorder stage restores timestamp order. A stream file is
    // served through the bounded readahead window (--mmap/--no-mmap) so
    // it never materializes; the demo stream chunks in memory.
    const std::size_t min_chunks =
        options.ingest_parsers > 1 ? options.ingest_parsers * 2 : 1;
    std::unique_ptr<FileChunkSource> file_source;
    std::unique_ptr<ChunkedStream> mem_source;
    const ChunkedStream* chunks = nullptr;
    if (!stream_path.empty()) {
      FileChunkOptions fco;
      fco.mode = options.ingest_file_mode;
      fco.allow_disorder = slack > 0;
      fco.min_chunks = min_chunks;
      fco.readahead_chunks = std::max(options.ingest_readahead_chunks,
                                      options.ingest_parsers + 1);
      auto source = MakeFileChunkSource(stream_path, options.ingest_format,
                                        &vocab, fco);
      if (!source.ok()) {
        std::fprintf(stderr, "stream: %s\n",
                     source.status().ToString().c_str());
        return 1;
      }
      file_source = std::move(source).ValueOrDie();
      chunks = file_source.get();
      file_mode_name = file_source->mode() == FileIngestMode::kMmap
                           ? "mmap"
                           : "buffered";
    } else {
      auto chunked = MakeChunkedStream(stream_text, options.ingest_format,
                                       &vocab,
                                       /*allow_disorder=*/slack > 0,
                                       min_chunks);
      if (!chunked.ok()) {
        std::fprintf(stderr, "stream: %s\n",
                     chunked.status().ToString().c_str());
        return 1;
      }
      mem_source = std::move(chunked).ValueOrDie();
      chunks = mem_source.get();
    }
    Status run = engine.RunPipelinedSharded(*chunks);
    if (!run.ok()) {
      std::fprintf(stderr, "stream: %s%s\n", run.ToString().c_str(),
                   slack == 0 ? " (out-of-order input? try --slack N)" : "");
      return 1;
    }
    if (engine.ingest_stats().late_dropped > 0) {
      std::fprintf(stderr, "%zu late element(s) dropped by the slack stage\n",
                   engine.ingest_stats().late_dropped);
    }
    print_results();
  } else if (slack > 0) {
    // Tolerate bounded disorder: lenient incremental parse feeding the
    // reorder buffer one element at a time. --slack tolerates disorder,
    // not malformed input — any cursor error is fatal. The buffer was
    // restored above when --restore found a snapshot with pending
    // elements.
    ReorderBuffer& buffer = *reorder_buffer;
    buffer.OnLate([&](const Sge& late) {
      std::fprintf(stderr, "late element dropped (t=%lld)\n",
                   static_cast<long long>(late.t));
    });
    std::unique_ptr<StreamCursor> cursor;
    if (binary) {
      cursor = std::make_unique<BinaryStreamCursor>(stream_text, &vocab,
                                                    /*allow_disorder=*/true);
    } else {
      cursor = std::make_unique<StreamCsvCursor>(stream_text, &vocab,
                                                 /*allow_disorder=*/true);
    }
    Sge sge;
    std::uint64_t raw = 0;
    while (cursor->Next(&sge, 1) == 1) {
      ++raw;
      // Already consumed before the crash: the restored reorder buffer
      // holds whatever of these was still pending at the snapshot.
      if (raw <= resume_raw) continue;
      for (const Sge& released : buffer.Offer(sge)) deliver(released);
      if (checkpointing && checkpoint_every > 0 &&
          raw % checkpoint_every == 0) {
        std::string blob;
        PutU64(&blob, raw);
        buffer.SerializeState(&blob);
        if (!take_checkpoint(raw, std::move(blob))) return 1;
      }
    }
    if (!cursor->ok()) {
      std::fprintf(stderr, "stream: %s\n",
                   cursor->status().ToString().c_str());
      return 1;
    }
    for (const Sge& released : buffer.Flush()) deliver(released);
  } else if (checkpointing) {
    // Element-indexed ingest with periodic snapshots. Push() handles
    // micro-batching internally (--batch N), and the pending micro-batch
    // queue is part of every snapshot, so batch grouping — and with it
    // flush boundaries and emission order — survives a restart.
    const InputStream& s = *stream;
    for (std::uint64_t i = resume_raw; i < s.size(); ++i) {
      engine.Push(s[i]);
      if (checkpoint_every > 0 && (i + 1) % checkpoint_every == 0) {
        if (!take_checkpoint(i + 1, std::string())) return 1;
      }
    }
  } else if (options.batch_size > 1) {
    // Micro-batched ingest: results materialize at flush boundaries, so
    // print them once the stream is drained.
    engine.PushAll(*stream);
    print_results();
  } else {
    for (const Sge& sge : *stream) deliver(sge);
  }

  if (checkpointing) {
    engine.Flush();
    print_results();
    // Surface a failed background write (ENOSPC, unwritable dir) before
    // exiting 0 — the previous good snapshot is still in place either way.
    if (Status st = engine.WaitForCheckpoint(); !st.ok()) {
      std::fprintf(stderr, "checkpoint: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  std::size_t total_results = 0;
  for (std::size_t q = 0; q < engine.num_queries(); ++q) {
    total_results += engine.results_emitted(static_cast<QueryId>(q));
  }
  std::fprintf(stderr,
               "\n%zu edges processed in %.3fs (%.0f edges/s), "
               "%zu results, p99 slide latency %.3f ms\n",
               engine.edges_processed(), timer.ElapsedSeconds(),
               static_cast<double>(engine.edges_processed()) /
                   std::max(timer.ElapsedSeconds(), 1e-9),
               total_results,
               engine.slide_latencies().Percentile(0.99) * 1e3);
  if (multi) {
    for (std::size_t q = 0; q < engine.num_queries(); ++q) {
      std::fprintf(stderr, "  q%zu: %zu results\n", q,
                   engine.results_emitted(static_cast<QueryId>(q)));
    }
  }
  if (options.async_ingest) {
    const IngestStats& ingest = engine.ingest_stats();
    std::fprintf(stderr,
                 "ingest pipeline: %zu batches, ingest stall %.3f ms, "
                 "exec stall %.3f ms\n",
                 ingest.batches, ingest.ingest_stall_ns / 1e6,
                 ingest.exec_stall_ns / 1e6);
    if (file_mode_name != nullptr) {
      std::fprintf(stderr, "file ingest (%s): readahead stall %.3f ms\n",
                   file_mode_name, ingest.readahead_stall_ns / 1e6);
    }
    if (ingest.parsers > 1) {
      std::fprintf(stderr,
                   "sharded parse: %zu parsers, merge stall %.3f ms\n",
                   ingest.parsers, ingest.merge_stall_ns / 1e6);
      for (std::size_t p = 0; p < ingest.parser_stall_ns.size(); ++p) {
        std::fprintf(stderr, "  parser %zu: busy %.3f ms, stall %.3f ms\n",
                     p, ingest.parser_busy_ns[p] / 1e6,
                     ingest.parser_stall_ns[p] / 1e6);
      }
    }
  }
  return 0;
}

// Command-line runner: evaluate persistent queries over a CSV edge stream.
//
// Usage:
//   stream_query_cli <query-file> <stream.csv> [window] [slide] [--gcore]
//                    [--delta-path] [--slack N] [--batch N] [--workers N]
//                    [--query FILE]... [--no-share] [--async-ingest]
//                    [--pin-workers]
//
//   query-file   Datalog rules (rq.h syntax) or a G-CORE query (--gcore)
//   stream.csv   lines `src,label,trg,timestamp[,+|-]`, timestamp-ordered
//                (with --slack N, bounded disorder is tolerated)
//   window/slide time-based sliding window, default 24 / 1
//   --query FILE register an additional standing query; all queries run
//                on one shared multi-query engine (core/engine.h) with
//                cross-query operator sharing (disable with --no-share),
//                and every result line is tagged `q<i><TAB>`
//   --async-ingest  parse the stream on a dedicated ingest thread,
//                double-buffered against execution (DESIGN.md §6); with
//                --slack N the reorder stage runs on the ingest thread
//                too. Results print when the stream drains.
//   --pin-workers   pin runtime threads to cores (best-effort affinity)
//
// Prints every result sgt as it is produced, then a metrics summary.
// Without arguments, runs a built-in demo (the paper's Figure 2 stream).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "sgq/sgq.h"

namespace {

sgq::Result<std::string> ReadFile(const char* path) {
  std::ifstream in(path);
  if (!in) {
    return sgq::Status::NotFound(std::string("cannot open ") + path);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

const char kDemoQuery[] =
    "Answer(x,y) <- follows+(x,y), likes(x,m), posts(y,m)";
const char kDemoStream[] =
    "u,follows,v,7\nv,posts,b,10\ny,follows,u,13\nv,posts,c,17\n"
    "u,posts,a,22\ny,likes,a,28\nu,likes,b,29\nu,likes,c,30\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace sgq;

  std::string query_text = kDemoQuery;
  std::string stream_text = kDemoStream;
  std::vector<std::string> extra_query_texts;
  Timestamp window = 24, slide = 1, slack = 0;
  bool use_gcore = false;
  EngineOptions options;

  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gcore") == 0) {
      use_gcore = true;
    } else if (std::strcmp(argv[i], "--delta-path") == 0) {
      options.path_impl = PathImpl::kDeltaPath;
    } else if (std::strcmp(argv[i], "--no-share") == 0) {
      options.cross_query_sharing = false;
    } else if (std::strcmp(argv[i], "--async-ingest") == 0) {
      options.async_ingest = true;
    } else if (std::strcmp(argv[i], "--pin-workers") == 0) {
      options.pin_workers = true;
    } else if (std::strcmp(argv[i], "--query") == 0 && i + 1 < argc) {
      auto text = ReadFile(argv[++i]);
      if (!text.ok()) {
        std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
        return 1;
      }
      extra_query_texts.push_back(*text);
    } else if (std::strcmp(argv[i], "--slack") == 0 && i + 1 < argc) {
      int64_t n = 0;
      if (!ParseInt64(argv[++i], &n) || n < 0) {
        std::fprintf(stderr,
                     "--slack: expected a non-negative integer, got '%s'\n",
                     argv[i]);
        return 2;
      }
      slack = n;
    } else if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc) {
      int64_t n = 0;
      if (!ParseInt64(argv[++i], &n) || n <= 0) {
        std::fprintf(stderr, "--batch: expected a positive integer, got '%s'\n",
                     argv[i]);
        return 2;
      }
      options.batch_size = static_cast<std::size_t>(n);
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      int64_t n = 0;
      if (!ParseInt64(argv[++i], &n) || n <= 0) {
        std::fprintf(stderr,
                     "--workers: expected a positive integer, got '%s'\n",
                     argv[i]);
        return 2;
      }
      options.num_workers = static_cast<std::size_t>(n);
    } else if (positional == 0) {
      auto text = ReadFile(argv[i]);
      if (!text.ok()) {
        std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
        return 1;
      }
      query_text = *text;
      ++positional;
    } else if (positional == 1) {
      auto text = ReadFile(argv[i]);
      if (!text.ok()) {
        std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
        return 1;
      }
      stream_text = *text;
      ++positional;
    } else if (positional == 2) {
      window = std::atoll(argv[i]);
      ++positional;
    } else if (positional == 3) {
      slide = std::atoll(argv[i]);
      ++positional;
    }
  }

  Vocabulary vocab;
  auto parse_query = [&](const std::string& text)
      -> sgq::Result<StreamingGraphQuery> {
    if (use_gcore) return ParseGCore(text, &vocab);
    return MakeQuery(text, WindowSpec(window, slide), &vocab);
  };

  std::vector<StreamingGraphQuery> queries;
  {
    auto parsed = parse_query(query_text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "query: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    queries.push_back(*parsed);
  }
  for (const std::string& text : extra_query_texts) {
    auto parsed = parse_query(text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "query %zu: %s\n", queries.size(),
                   parsed.status().ToString().c_str());
      return 1;
    }
    queries.push_back(*parsed);
  }
  const bool multi = queries.size() > 1;

  // Async ingest parses during the run (on the ingest thread); the eager
  // whole-stream parse is the synchronous paths' input.
  sgq::Result<InputStream> stream = InputStream{};
  if (options.async_ingest) {
    // The slack stage folds into the ingest pipeline (DESIGN.md §6).
    options.ingest_slack = slack;
  } else {
    stream = ParseStreamCsv(stream_text, &vocab);
    if (!stream.ok() && slack == 0) {
      std::fprintf(stderr,
                   "stream: %s (out-of-order input? try --slack N)\n",
                   stream.status().ToString().c_str());
      return 1;
    }
  }

  // All queries — one or many — register on a shared multi-query engine;
  // a single query is exactly the classic QueryProcessor configuration.
  Engine engine(options);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    auto added = engine.AddQuery(queries[q], vocab);
    if (!added.ok()) {
      std::fprintf(stderr, "compile (query %zu): %s\n", q,
                   added.status().ToString().c_str());
      return 1;
    }
  }
  if (auto finalized = engine.Finalize(); !finalized.ok()) {
    std::fprintf(stderr, "compile: %s\n", finalized.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "plan:\n%s", engine.Explain().c_str());
  if (multi) {
    std::fprintf(stderr,
                 "%zu queries on %zu operators (%zu shared subtrees)\n",
                 queries.size(), engine.NumOperators(),
                 engine.NumSharedSubtrees());
  }
  std::fprintf(stderr, "\n");

  auto print_results = [&]() {
    for (std::size_t q = 0; q < engine.num_queries(); ++q) {
      for (const Sgt& r : engine.TakeResults(static_cast<QueryId>(q))) {
        if (multi) {
          std::printf("q%zu\t%s\n", q, r.ToString(vocab).c_str());
        } else {
          std::printf("%s\n", r.ToString(vocab).c_str());
        }
      }
    }
  };

  Stopwatch timer;
  auto deliver = [&](const Sge& sge) {
    engine.Push(sge);
    print_results();
  };

  if (slack > 0 && options.batch_size > 1 && !options.async_ingest) {
    // The slack path delivers (and prints) results per element, which
    // flushes the ingest queue each time — batching cannot take effect.
    // (With --async-ingest the slack stage lives on the ingest thread and
    // batching works normally.)
    std::fprintf(stderr,
                 "--batch has no effect with --slack; running "
                 "tuple-at-a-time\n");
  }
  if (options.async_ingest) {
    // Pipelined run: the cursor below executes on the ingest thread,
    // overlapped with execution; results materialize when the stream
    // drains. With --slack the cursor tolerates disorder and the
    // pipeline's reorder stage restores timestamp order.
    StreamCsvCursor cursor(stream_text, &vocab,
                           /*allow_disorder=*/slack > 0);
    engine.RunPipelined([&cursor](Sge* buf, std::size_t cap) {
      return cursor.Next(buf, cap);
    });
    if (!cursor.ok()) {
      std::fprintf(stderr, "stream: %s%s\n",
                   cursor.status().ToString().c_str(),
                   slack == 0 ? " (out-of-order input? try --slack N)" : "");
      return 1;
    }
    if (engine.ingest_stats().late_dropped > 0) {
      std::fprintf(stderr, "%zu late element(s) dropped by the slack stage\n",
                   engine.ingest_stats().late_dropped);
    }
    print_results();
  } else if (slack > 0) {
    // Tolerate bounded disorder: re-parse leniently line by line.
    ReorderBuffer buffer(slack);
    buffer.OnLate([&](const Sge& late) {
      std::fprintf(stderr, "late element dropped (t=%lld)\n",
                   static_cast<long long>(late.t));
    });
    std::size_t line_no = 0;
    for (const std::string& line : SplitString(stream_text, '\n')) {
      ++line_no;
      if (TrimString(line).empty()) continue;
      auto one = ParseStreamCsv(std::string(TrimString(line)) + "\n", &vocab);
      if (!one.ok()) {
        // --slack tolerates disorder, not malformed input: a single-line
        // parse cannot fail the ordering check, so any error is fatal.
        // The single-line parser reports "line 1"; substitute the real
        // line number.
        std::string msg = one.status().message();
        const std::string kInnerPrefix = "line 1: ";
        if (StartsWith(msg, kInnerPrefix)) {
          msg = msg.substr(kInnerPrefix.size());
        }
        std::fprintf(stderr, "stream: line %zu: %s\n", line_no, msg.c_str());
        return 1;
      }
      if (one->empty()) continue;  // comment line
      for (const Sge& released : buffer.Offer((*one)[0])) {
        deliver(released);
      }
    }
    for (const Sge& released : buffer.Flush()) deliver(released);
  } else if (options.batch_size > 1) {
    // Micro-batched ingest: results materialize at flush boundaries, so
    // print them once the stream is drained.
    engine.PushAll(*stream);
    print_results();
  } else {
    for (const Sge& sge : *stream) deliver(sge);
  }

  std::size_t total_results = 0;
  for (std::size_t q = 0; q < engine.num_queries(); ++q) {
    total_results += engine.results_emitted(static_cast<QueryId>(q));
  }
  std::fprintf(stderr,
               "\n%zu edges processed in %.3fs (%.0f edges/s), "
               "%zu results, p99 slide latency %.3f ms\n",
               engine.edges_processed(), timer.ElapsedSeconds(),
               static_cast<double>(engine.edges_processed()) /
                   std::max(timer.ElapsedSeconds(), 1e-9),
               total_results,
               engine.slide_latencies().Percentile(0.99) * 1e3);
  if (multi) {
    for (std::size_t q = 0; q < engine.num_queries(); ++q) {
      std::fprintf(stderr, "  q%zu: %zu results\n", q,
                   engine.results_emitted(static_cast<QueryId>(q)));
    }
  }
  if (options.async_ingest) {
    const IngestStats& ingest = engine.ingest_stats();
    std::fprintf(stderr,
                 "ingest pipeline: %zu batches, ingest stall %.3f ms, "
                 "exec stall %.3f ms\n",
                 ingest.batches, ingest.ingest_stall_ns / 1e6,
                 ingest.exec_stall_ns / 1e6);
  }
  return 0;
}

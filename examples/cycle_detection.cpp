// Real-time cycle detection on a transaction stream — the GraphS use case
// the paper cites ([60]): flag money flows that return to their origin
// within a sliding window (a common fraud signal).
//
// Two persistent queries run side by side:
//   1. a fixed-length cycle (a transfer triangle) via PATTERN, and
//   2. arbitrary-length cycles via PATH (transfer+ from x back to x),
//      demonstrating SGA's unified handling of both (R1 & R2).
//
// Build & run:  ./build/examples/cycle_detection

#include <cstdio>
#include <random>

#include "sgq/sgq.h"

int main() {
  using namespace sgq;

  Vocabulary vocab;

  // Query 1: transfer triangles x -> y -> z -> x within one hour.
  auto triangle = MakeQuery(
      "Answer(x,x2) <- transfer(x,y), transfer(y,z), transfer(z,x2)",
      WindowSpec(60, 1), &vocab);
  if (!triangle.ok()) return 1;
  // Keep only closed triangles: src == trg.
  auto triangle_plan = TranslateToCanonicalPlan(*triangle, vocab);
  if (!triangle_plan.ok()) return 1;
  FilterPredicate closed;
  closed.kind = FilterPredicate::Kind::kSrcEqualsTrg;
  LogicalPlan filtered =
      MakeFilter({closed}, std::move(*triangle_plan));

  auto triangle_qp = QueryProcessor::Compile(*filtered, vocab, {});
  if (!triangle_qp.ok()) {
    std::fprintf(stderr, "%s\n", triangle_qp.status().ToString().c_str());
    return 1;
  }

  // Query 2: arbitrary-length cycles via transitive closure + self filter.
  auto cycles = MakeQuery("Answer(x,y) <- transfer+(x,y)",
                          WindowSpec(60, 1), &vocab);
  if (!cycles.ok()) return 1;
  auto cycles_plan = TranslateToCanonicalPlan(*cycles, vocab);
  if (!cycles_plan.ok()) return 1;
  LogicalPlan cycles_filtered =
      MakeFilter({closed}, std::move(*cycles_plan));
  auto cycles_qp = QueryProcessor::Compile(*cycles_filtered, vocab, {});
  if (!cycles_qp.ok()) return 1;

  // Synthetic account-to-account transfer stream with a few planted rings.
  std::mt19937_64 rng(2024);
  InputStream stream;
  const int kAccounts = 40;
  auto account = [&](int i) {
    return vocab.InternVertex("acct" + std::to_string(i));
  };
  LabelId transfer = *vocab.InternInputLabel("transfer");
  Timestamp t = 0;
  for (int i = 0; i < 300; ++i) {
    t += rng() % 2;
    if (i % 60 == 30) {
      // Plant a laundering ring of length 4.
      int base = static_cast<int>(rng() % (kAccounts - 4));
      for (int k = 0; k < 4; ++k) {
        stream.emplace_back(account(base + k),
                            account(base + (k + 1) % 4), transfer, t);
      }
      continue;
    }
    stream.emplace_back(account(static_cast<int>(rng() % kAccounts)),
                        account(static_cast<int>(rng() % kAccounts)),
                        transfer, t);
  }

  std::size_t triangles = 0, rings = 0;
  for (const Sge& sge : stream) {
    (*triangle_qp)->Push(sge);
    (*cycles_qp)->Push(sge);
    for (const Sgt& r : (*triangle_qp)->TakeResults()) {
      (void)r;
      ++triangles;
    }
    for (const Sgt& r : (*cycles_qp)->TakeResults()) {
      ++rings;
      if (rings <= 5) {
        std::printf("cycle alert: %s returns to itself via %zu hops %s\n",
                    vocab.VertexName(r.src).c_str(), r.payload.size(),
                    r.validity.ToString().c_str());
      }
    }
  }
  std::printf(
      "\n%zu triangle alerts, %zu arbitrary-length cycle alerts over %zu "
      "transfers\n",
      triangles, rings, stream.size());
  return 0;
}

// stream_convert: convert edge streams between CSV text and the SGQB
// binary format (model/stream_io.h, DESIGN.md §6).
//
// Usage:
//   stream_convert [--to-binary | --to-csv] [--no-mmap] <input> <output>
//
// Without a direction flag the input format is sniffed by its magic bytes
// and the stream is converted to the *other* format. Conversion is exact:
// CSV -> binary -> CSV reproduces the original text byte for byte (the
// binary dictionaries record names in first-use order, the same order a
// CSV parse interns them).
//
// Bounded memory: the input streams through a windowed chunk feeder
// (model/file_chunk_source.h; mmap where available, --no-mmap forces
// buffered preads) and the output flushes through a 32 KB staging buffer
// (FileByteSink), so converting a file much larger than RAM holds only
// the readahead window, the staging buffer and the name dictionaries.
// Writing SGQB needs the dictionaries and the record count in the header
// before the first record, so that direction walks the input twice
// (dictionary pass, then encode pass); writing CSV is single-pass.
//
// Exit status: 0 on success, 1 on I/O or parse errors, 2 on usage errors.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "model/file_chunk_source.h"
#include "model/stream_io.h"
#include "model/vocabulary.h"

namespace {

void PrintUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: stream_convert [--to-binary | --to-csv] [--no-mmap] "
               "<input> <output>\n"
               "  --to-binary  write SGQB binary (input must be CSV or "
               "SGQB)\n"
               "  --to-csv     write CSV text (input must be CSV or SGQB)\n"
               "  --no-mmap    read the input with buffered preads instead "
               "of mmap\n"
               "  default      sniff the input format, convert to the "
               "other one\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sgq;

  bool have_target = false;
  StreamFormat target = StreamFormat::kBinary;
  FileIngestMode mode = FileIngestMode::kAuto;
  const char* input_path = nullptr;
  const char* output_path = nullptr;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--to-binary") == 0) {
      target = StreamFormat::kBinary;
      have_target = true;
    } else if (std::strcmp(argv[i], "--to-csv") == 0) {
      target = StreamFormat::kCsv;
      have_target = true;
    } else if (std::strcmp(argv[i], "--no-mmap") == 0) {
      mode = FileIngestMode::kBuffered;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      PrintUsage(stdout);
      return 0;
    } else if (argv[i][0] == '-' && argv[i][1] != '\0') {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      PrintUsage(stderr);
      return 2;
    } else if (input_path == nullptr) {
      input_path = argv[i];
    } else if (output_path == nullptr) {
      output_path = argv[i];
    } else {
      std::fprintf(stderr, "too many arguments\n");
      PrintUsage(stderr);
      return 2;
    }
  }
  if (input_path == nullptr || output_path == nullptr) {
    PrintUsage(stderr);
    return 2;
  }

  auto detected = DetectStreamFileFormat(input_path);
  if (!detected.ok()) {
    std::fprintf(stderr, "%s\n", detected.status().ToString().c_str());
    return 1;
  }
  const StreamFormat source = *detected;
  if (!have_target) {
    target = source == StreamFormat::kCsv ? StreamFormat::kBinary
                                          : StreamFormat::kCsv;
  }

  // Decode with a fresh vocabulary so the binary dictionaries (and a
  // later CSV re-render) follow the stream's own first-use order. Both
  // passes share it; interning is idempotent, so ids are stable.
  Vocabulary vocab;
  FileChunkOptions fco;
  fco.mode = mode;
  const auto open_input = [&] {
    return MakeFileChunkSource(input_path, source, &vocab, fco);
  };

  auto in = open_input();
  if (!in.ok()) {
    std::fprintf(stderr, "%s\n", in.status().ToString().c_str());
    return 1;
  }
  const std::uint64_t in_bytes = (*in)->file_size();

  FileByteSink sink(output_path);
  if (!sink.status().ok()) {
    std::fprintf(stderr, "%s\n", sink.status().ToString().c_str());
    return 1;
  }
  std::string staging;
  const auto ship = [&](bool final_flush) {
    if (final_flush || staging.size() >= kStreamIoBufferBytes) {
      if (Status s = sink.Append(staging); !s.ok()) return s;
      staging.clear();
    }
    return Status::OK();
  };

  std::uint64_t num_elements = 0;
  Sge buf[256];
  constexpr std::size_t kCap = sizeof(buf) / sizeof(buf[0]);

  if (target == StreamFormat::kCsv) {
    // Single pass: decode, render, ship.
    ChunkWalkCursor cursor(**in, /*allow_disorder=*/false);
    for (;;) {
      const std::size_t n = cursor.Next(buf, kCap);
      if (n == 0) break;
      for (std::size_t i = 0; i < n; ++i) {
        AppendCsvLine(buf[i], vocab, &staging);
      }
      num_elements += n;
      if (Status s = ship(false); !s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
    }
    if (!cursor.ok()) {
      std::fprintf(stderr, "%s: %s\n", input_path,
                   cursor.status().ToString().c_str());
      return 1;
    }
  } else {
    // Pass 1: first-use-order dictionaries and the record count — the
    // header needs both before the first record can be written.
    std::unordered_map<LabelId, std::uint32_t> label_index;
    std::unordered_map<VertexId, std::uint32_t> vertex_index;
    std::vector<LabelId> labels;
    std::vector<VertexId> vertices;
    const auto vertex_idx = [&](VertexId v) {
      auto [it, inserted] = vertex_index.emplace(
          v, static_cast<std::uint32_t>(vertices.size()));
      if (inserted) vertices.push_back(v);
      return it->second;
    };
    const auto label_idx = [&](LabelId l) {
      auto [it, inserted] =
          label_index.emplace(l, static_cast<std::uint32_t>(labels.size()));
      if (inserted) labels.push_back(l);
      return it->second;
    };
    {
      ChunkWalkCursor cursor(**in, /*allow_disorder=*/false);
      for (;;) {
        const std::size_t n = cursor.Next(buf, kCap);
        if (n == 0) break;
        for (std::size_t i = 0; i < n; ++i) {
          // CSV intern order is src, label, trg per line; match it exactly.
          vertex_idx(buf[i].src);
          label_idx(buf[i].label);
          vertex_idx(buf[i].trg);
        }
        num_elements += n;
        if (labels.size() > UINT32_MAX || vertices.size() > UINT32_MAX) {
          std::fprintf(stderr,
                       "%s: binary stream: more than 2^32 - 1 distinct "
                       "labels/vertices\n",
                       input_path);
          return 1;
        }
      }
      if (!cursor.ok()) {
        std::fprintf(stderr, "%s: %s\n", input_path,
                     cursor.status().ToString().c_str());
        return 1;
      }
    }
    if (Status s =
            AppendBinaryStreamHeader(labels, vertices, num_elements, vocab,
                                     &staging);
        !s.ok()) {
      std::fprintf(stderr, "%s: %s\n", input_path, s.ToString().c_str());
      return 1;
    }
    // Pass 2: decode again (fresh source, same vocab — ids are stable)
    // and encode each record through the now-complete index maps.
    in = open_input();
    if (!in.ok()) {
      std::fprintf(stderr, "%s\n", in.status().ToString().c_str());
      return 1;
    }
    ChunkWalkCursor cursor(**in, /*allow_disorder=*/false);
    for (;;) {
      const std::size_t n = cursor.Next(buf, kCap);
      if (n == 0) break;
      for (std::size_t i = 0; i < n; ++i) {
        AppendBinaryStreamRecord(buf[i], vertex_index.at(buf[i].src),
                                 vertex_index.at(buf[i].trg),
                                 label_index.at(buf[i].label), &staging);
      }
      if (Status s = ship(false); !s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
    }
    if (!cursor.ok()) {
      std::fprintf(stderr, "%s: %s\n", input_path,
                   cursor.status().ToString().c_str());
      return 1;
    }
  }

  if (Status s = ship(true); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = sink.Close(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::fprintf(
      stderr, "%s (%s, %zu bytes) -> %s (%s, %zu bytes), %zu elements\n",
      input_path, source == StreamFormat::kBinary ? "SGQB" : "CSV",
      static_cast<std::size_t>(in_bytes), output_path,
      target == StreamFormat::kBinary ? "SGQB" : "CSV",
      static_cast<std::size_t>(sink.bytes_written()),
      static_cast<std::size_t>(num_elements));
  return 0;
}

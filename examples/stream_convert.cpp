// stream_convert: convert edge streams between CSV text and the SGQB
// binary format (model/stream_io.h, DESIGN.md §6).
//
// Usage:
//   stream_convert [--to-binary | --to-csv] <input> <output>
//
// Without a direction flag the input format is sniffed by its magic bytes
// and the stream is converted to the *other* format. Conversion is exact:
// CSV -> binary -> CSV reproduces the original text byte for byte (the
// binary dictionaries record names in first-use order, the same order a
// CSV parse interns them). All file I/O is buffered (32 KB).
//
// Exit status: 0 on success, 1 on I/O or parse errors, 2 on usage errors.

#include <cstdio>
#include <cstring>

#include "model/stream_io.h"
#include "model/vocabulary.h"

namespace {

void PrintUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: stream_convert [--to-binary | --to-csv] "
               "<input> <output>\n"
               "  --to-binary  write SGQB binary (input must be CSV or "
               "SGQB)\n"
               "  --to-csv     write CSV text (input must be CSV or SGQB)\n"
               "  default      sniff the input format, convert to the "
               "other one\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sgq;

  bool have_target = false;
  StreamFormat target = StreamFormat::kBinary;
  const char* input_path = nullptr;
  const char* output_path = nullptr;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--to-binary") == 0) {
      target = StreamFormat::kBinary;
      have_target = true;
    } else if (std::strcmp(argv[i], "--to-csv") == 0) {
      target = StreamFormat::kCsv;
      have_target = true;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      PrintUsage(stdout);
      return 0;
    } else if (argv[i][0] == '-' && argv[i][1] != '\0') {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      PrintUsage(stderr);
      return 2;
    } else if (input_path == nullptr) {
      input_path = argv[i];
    } else if (output_path == nullptr) {
      output_path = argv[i];
    } else {
      std::fprintf(stderr, "too many arguments\n");
      PrintUsage(stderr);
      return 2;
    }
  }
  if (input_path == nullptr || output_path == nullptr) {
    PrintUsage(stderr);
    return 2;
  }

  auto bytes = ReadFileBytes(input_path);
  if (!bytes.ok()) {
    std::fprintf(stderr, "%s\n", bytes.status().ToString().c_str());
    return 1;
  }
  const StreamFormat source = DetectStreamFormat(*bytes);
  if (!have_target) {
    target = source == StreamFormat::kCsv ? StreamFormat::kBinary
                                          : StreamFormat::kCsv;
  }

  // Decode with a fresh vocabulary so the binary dictionaries (and a
  // later CSV re-render) follow the stream's own first-use order.
  Vocabulary vocab;
  auto stream = source == StreamFormat::kBinary
                    ? ParseStreamBinary(*bytes, &vocab)
                    : ParseStreamCsv(*bytes, &vocab);
  if (!stream.ok()) {
    std::fprintf(stderr, "%s: %s\n", input_path,
                 stream.status().ToString().c_str());
    return 1;
  }

  std::string out_bytes;
  if (target == StreamFormat::kBinary) {
    auto encoded = FormatStreamBinary(*stream, vocab);
    if (!encoded.ok()) {
      std::fprintf(stderr, "%s: %s\n", input_path,
                   encoded.status().ToString().c_str());
      return 1;
    }
    out_bytes = std::move(*encoded);
  } else {
    out_bytes = FormatStreamCsv(*stream, vocab);
  }

  if (Status s = WriteFileBytes(output_path, out_bytes); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "%s (%s, %zu bytes) -> %s (%s, %zu bytes), %zu elements\n",
               input_path, source == StreamFormat::kBinary ? "SGQB" : "CSV",
               bytes->size(), output_path,
               target == StreamFormat::kBinary ? "SGQB" : "CSV",
               out_bytes.size(), stream->size());
  return 0;
}

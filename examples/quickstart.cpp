// Quickstart: register a persistent streaming graph query, push edges,
// receive incremental results.
//
// The query is Q6-shaped (the paper's "recent likers", LDBC IC7): pairs
// (x, y) such that x is connected to y by a path of `follows` edges and x
// liked a message y posted — all within a sliding window.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "sgq/sgq.h"

int main() {
  using namespace sgq;

  Vocabulary vocab;

  // 1. A persistent query in Datalog form: the Answer rule defines the
  //    output streaming graph. `follows+` is a transitive closure.
  auto query = MakeQuery(
      "Answer(x,y) <- follows+(x,y), likes(x,m), posts(y,m)",
      /*window=*/WindowSpec(/*size=*/24, /*slide=*/1), &vocab);
  if (!query.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }

  // 2. Compile it: the canonical SGA plan with incremental operators.
  auto processor = QueryProcessor::FromQuery(*query, vocab, EngineOptions{});
  if (!processor.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 processor.status().ToString().c_str());
    return 1;
  }
  std::printf("physical plan:\n%s\n", (*processor)->Explain().c_str());

  // 3. Push the stream (the paper's Figure 2). Results appear as soon as
  //    the last edge of a match arrives.
  auto stream = ParseStreamCsv(
      "u,follows,v,7\n"
      "v,posts,b,10\n"
      "y,follows,u,13\n"
      "v,posts,c,17\n"
      "u,posts,a,22\n"
      "y,likes,a,28\n"
      "u,likes,b,29\n"
      "u,likes,c,30\n",
      &vocab);
  if (!stream.ok()) {
    std::fprintf(stderr, "stream error: %s\n",
                 stream.status().ToString().c_str());
    return 1;
  }

  for (const Sge& sge : *stream) {
    (*processor)->Push(sge);
    for (const Sgt& result : (*processor)->TakeResults()) {
      std::printf("t=%2lld  new result: %s\n",
                  static_cast<long long>(sge.t),
                  result.ToString(vocab).c_str());
    }
  }

  std::printf("\nprocessed %zu edges, emitted %zu results\n",
              (*processor)->edges_processed(),
              (*processor)->results_emitted());
  return 0;
}

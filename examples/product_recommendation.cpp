// Example 4 of the paper: combining two streams with different windows.
//
// A social stream (follows / likes / posts, 24-hour window) is joined with
// a transaction stream (purchase, 30-day window) to recommend products:
// if u2 is an acquaintance of u1 — they are friends OR u1 liked u2's post —
// and u2 purchased p, then recommend p to u1. The two OPTIONAL blocks of
// the G-CORE query compile to a UNION of rules, and the two ON..WINDOW
// clauses produce per-label windows (Fig. 7).
//
// Build & run:  ./build/examples/product_recommendation

#include <cstdio>

#include "sgq/sgq.h"

int main() {
  using namespace sgq;

  Vocabulary vocab;
  auto query = ParseGCore(
      "CONSTRUCT (u1)-[:recommendation]->(p)\n"
      "MATCH OPTIONAL (u1)-[:follows]->(u2) "
      "OPTIONAL (u1)-[:likes]->(m)<-[:posts]-(u2)\n"
      "ON social_stream WINDOW (24 HOURS)\n"
      "MATCH (c)-[:purchase]->(p)\n"
      "ON tx_stream WINDOW (30 DAYS) SLIDE (1 DAYS)\n"
      "WHERE (u2) = (c)",
      &vocab);
  if (!query.ok()) {
    std::fprintf(stderr, "G-CORE error: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }
  std::printf("compiled RQ (two rules = OPTIONAL union):\n%s\n",
              query->rq.ToString(vocab).c_str());

  auto processor = QueryProcessor::FromQuery(*query, vocab, EngineOptions{});
  if (!processor.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 processor.status().ToString().c_str());
    return 1;
  }

  // One merged, timestamp-ordered stream carrying both sources (labels
  // route the tuples to their windows).
  auto stream = ParseStreamCsv(
      "dana,purchase,vinyl,1\n"
      "alice,follows,bob,10\n"
      "bob,purchase,headphones,12\n"   // friend purchase -> recommend
      "carol,posts,m9,14\n"
      "erin,likes,m9,15\n"             // erin liked carol's post
      "carol,purchase,keyboard,20\n"   // -> recommend keyboard to erin
      "bob,purchase,amplifier,30\n"    // another one for alice
      "frank,follows,alice,700\n"      // 700h later: old purchases expired?
      "alice,purchase,records,701\n",
      &vocab);
  if (!stream.ok()) return 1;

  for (const Sge& sge : *stream) {
    (*processor)->Push(sge);
    for (const Sgt& r : (*processor)->TakeResults()) {
      std::printf("t=%3lld  recommend %-12s to %-8s (valid %s)\n",
                  static_cast<long long>(sge.t),
                  vocab.VertexName(r.trg).c_str(),
                  vocab.VertexName(r.src).c_str(),
                  r.validity.ToString().c_str());
    }
  }

  std::printf("\n%zu recommendations from %zu events\n",
              (*processor)->results_emitted(),
              (*processor)->edges_pushed());
  return 0;
}

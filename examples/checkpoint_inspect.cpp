// checkpoint_inspect — dump the frame table of an SGQC snapshot
// (model/checkpoint.h, DESIGN.md §7) without deserializing any state.
//
// Usage:
//   checkpoint_inspect <checkpoint.sgqc>...
//
// Unlike CheckpointReader (which refuses the whole file on the first bad
// byte), this walk is deliberately *lenient*: it reports every frame it
// can reach — header, per-section name / offset / length / stored vs
// computed CRC, footer magic and whole-file CRC — and marks each as OK or
// BAD, so a torn or bit-flipped checkpoint can be localized by eye.
// Exits 0 only when every check passes, 1 otherwise (2 on unreadable
// input), so it doubles as a cheap validity probe in scripts.

#include <cstdio>
#include <cstring>
#include <string>

#include "common/crc32.h"
#include "model/checkpoint.h"
#include "model/stream_io.h"

namespace {

using sgq::Crc32;

/// \brief Little-endian reads that refuse to run off the end.
bool ReadU16(const std::string& b, std::size_t* off, std::uint16_t* v) {
  if (*off + 2 > b.size()) return false;
  *v = static_cast<std::uint16_t>(static_cast<unsigned char>(b[*off])) |
       static_cast<std::uint16_t>(static_cast<unsigned char>(b[*off + 1]))
           << 8;
  *off += 2;
  return true;
}

bool ReadU32(const std::string& b, std::size_t* off, std::uint32_t* v) {
  if (*off + 4 > b.size()) return false;
  *v = 0;
  for (int i = 3; i >= 0; --i) {
    *v = (*v << 8) | static_cast<unsigned char>(b[*off + i]);
  }
  *off += 4;
  return true;
}

bool ReadU64(const std::string& b, std::size_t* off, std::uint64_t* v) {
  if (*off + 8 > b.size()) return false;
  *v = 0;
  for (int i = 7; i >= 0; --i) {
    *v = (*v << 8) | static_cast<unsigned char>(b[*off + i]);
  }
  *off += 8;
  return true;
}

int Inspect(const char* path) {
  auto bytes = sgq::ReadFileBytes(path);
  if (!bytes.ok()) {
    std::fprintf(stderr, "%s\n", bytes.status().ToString().c_str());
    return 2;
  }
  const std::string& b = *bytes;
  std::printf("%s: %zu bytes\n", path, b.size());
  int bad = 0;
  std::size_t off = 0;

  if (b.size() < 4 ||
      std::memcmp(b.data(), sgq::kCheckpointMagic, 4) != 0) {
    std::printf("  magic           BAD (want \"SGQC\")\n");
    return 1;  // nothing past a wrong magic is worth decoding
  }
  off = 4;
  std::printf("  magic           OK  \"SGQC\"\n");

  std::uint32_t version = 0, section_count = 0;
  if (!ReadU32(b, &off, &version) || !ReadU32(b, &off, &section_count)) {
    std::printf("  header          BAD (truncated at offset %zu)\n", off);
    return 1;
  }
  std::printf("  version         %s  %u%s\n",
              version == sgq::kCheckpointVersion ? "OK " : "BAD", version,
              version == sgq::kCheckpointVersion ? "" : " (unsupported)");
  if (version != sgq::kCheckpointVersion) ++bad;
  std::printf("  sections        %u\n", section_count);

  std::printf("  %-4s %-12s %10s %12s  %-10s %-10s %s\n", "#", "name",
              "offset", "length", "stored", "computed", "crc");
  for (std::uint32_t i = 0; i < section_count; ++i) {
    std::uint16_t name_len = 0;
    if (!ReadU16(b, &off, &name_len) || off + name_len > b.size()) {
      std::printf("  %-4u <truncated frame header at offset %zu>\n", i, off);
      return 1;
    }
    const std::string name = b.substr(off, name_len);
    off += name_len;
    std::uint64_t payload_len = 0;
    std::uint32_t stored_crc = 0;
    if (!ReadU64(b, &off, &payload_len) || !ReadU32(b, &off, &stored_crc)) {
      std::printf("  %-4u %-12s <truncated frame header at offset %zu>\n", i,
                  name.c_str(), off);
      return 1;
    }
    if (payload_len > b.size() - off) {
      std::printf("  %-4u %-12s %10zu %12llu  <payload truncated: %zu "
                  "bytes left>\n",
                  i, name.c_str(), off,
                  static_cast<unsigned long long>(payload_len),
                  b.size() - off);
      return 1;
    }
    const std::uint32_t computed =
        Crc32(b.data() + off, static_cast<std::size_t>(payload_len));
    const bool ok = computed == stored_crc;
    if (!ok) ++bad;
    std::printf("  %-4u %-12s %10zu %12llu  0x%08x 0x%08x %s\n", i,
                name.c_str(), off,
                static_cast<unsigned long long>(payload_len), stored_crc,
                computed, ok ? "OK" : "BAD");
    off += static_cast<std::size_t>(payload_len);
  }

  if (off + 8 != b.size() ||
      std::memcmp(b.data() + off, sgq::kCheckpointEndMagic, 4) != 0) {
    std::printf("  footer          BAD (missing end magic at offset %zu)\n",
                off);
    return 1;
  }
  std::printf("  footer          OK  \"CQGS\" at offset %zu\n", off);
  const std::uint32_t file_computed = Crc32(b.data(), off + 4);
  std::size_t crc_off = off + 4;
  std::uint32_t file_stored = 0;
  ReadU32(b, &crc_off, &file_stored);
  const bool file_ok = file_stored == file_computed;
  if (!file_ok) ++bad;
  std::printf("  file crc        %s  stored 0x%08x computed 0x%08x\n",
              file_ok ? "OK " : "BAD", file_stored, file_computed);
  return bad == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: checkpoint_inspect <checkpoint.sgqc>...\n");
    return 2;
  }
  int worst = 0;
  for (int i = 1; i < argc; ++i) {
    const int rc = Inspect(argv[i]);
    if (rc > worst) worst = rc;
    if (i + 1 < argc) std::printf("\n");
  }
  return worst;
}

// Example 1 of the paper, end to end: the real-time notification service.
//
// A user u must be notified of new content m when m's author is connected
// to u through a path of `recentLiker` relationships. The recentLiker
// relationship is itself a derived pattern (a triangle of likes/posts plus
// a follows-path). The query is written in the paper's user-level language
// (G-CORE with a WINDOW clause, Fig. 6) and the answers carry full
// materialized recentLiker paths — paths are first-class citizens (R3).
//
// Build & run:  ./build/examples/social_recommendation

#include <cstdio>

#include "sgq/sgq.h"

int main() {
  using namespace sgq;

  Vocabulary vocab;

  // The Figure 6 query: PATH defines recentLiker (RL); MATCH navigates
  // RL-paths and joins the destination's posts; CONSTRUCT emits notify
  // edges. Window: 24 hours.
  auto query = ParseGCore(
      "PATH RL = (u1)-/<:follows+>/->(u2), "
      "(u1)-[:likes]->(m1)<-[:posts]-(u2)\n"
      "CONSTRUCT (u)-[:notify]->(m)\n"
      "MATCH (u)-/<~RL+>/->(v), (v)-[:posts]->(m)\n"
      "ON social_stream WINDOW (24 HOURS)",
      &vocab);
  if (!query.ok()) {
    std::fprintf(stderr, "G-CORE error: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }
  std::printf("compiled RQ:\n%s\n", query->rq.ToString(vocab).c_str());

  auto processor = QueryProcessor::FromQuery(*query, vocab, EngineOptions{});
  if (!processor.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 processor.status().ToString().c_str());
    return 1;
  }

  // A small synthetic burst of social interactions: users post, follow and
  // like; the engine pushes notifications incrementally.
  auto stream = ParseStreamCsv(
      "alice,follows,bob,1\n"
      "bob,follows,alice,2\n"
      "bob,posts,m1,3\n"
      "alice,likes,m1,4\n"      // alice recentLikes bob
      "carol,follows,alice,5\n"
      "alice,follows,carol,5\n"
      "alice,posts,m2,6\n"
      "carol,likes,m2,7\n"      // carol recentLikes alice
      "bob,posts,m3,9\n",       // -> notify carol (via carol->alice->bob)
      &vocab);
  if (!stream.ok()) {
    std::fprintf(stderr, "stream error: %s\n",
                 stream.status().ToString().c_str());
    return 1;
  }

  for (const Sge& sge : *stream) {
    (*processor)->Push(sge);
    for (const Sgt& r : (*processor)->TakeResults()) {
      std::printf("notify %s about %s   (valid %s)\n",
                  vocab.VertexName(r.src).c_str(),
                  vocab.VertexName(r.trg).c_str(),
                  r.validity.ToString().c_str());
    }
  }
  return 0;
}
